//! Persistence for the build-once / query-many structures.
//!
//! Building an [`ApproxIrs`](crate::ApproxIrs) costs one pass over the full
//! interaction log; the resulting sketches are small. These codecs let an
//! application precompute the sketches offline and serve
//! influence-oracle queries from a file:
//!
//! * [`ApproxOracle`]: `"IPAO"` header + per-node raw HLL registers — the
//!   minimal artefact needed to answer `Inf(S)` queries.
//! * [`ApproxIrs`]: `"IPAI"` header + window + per-node versioned-HLL
//!   blocks — the full sketch state, from which the oracle can be rebuilt
//!   and per-node estimates queried.
//! * [`FrozenExactOracle`]: `"IPFE"` header + the CSR arena verbatim
//!   (offset array, then the flat entry array) — loads with two bulk reads
//!   and **no per-node allocation**.
//! * [`FrozenApproxOracle`]: `"IPFA"` header + the flat register arena
//!   (`β` bytes per node) — one bulk read, per-node estimates recomputed
//!   in a single pass on load.
//!
//! Formats are little-endian and validated on read (magic, version,
//! precision, per-sketch/per-summary invariants) via [`CodecError`].

use crate::approx::ApproxIrs;
use crate::engine::ExactSummary;
use crate::exact::ExactIrs;
use crate::frozen::{FrozenApproxOracle, FrozenExactOracle};
use crate::oracle::{ApproxOracle, InfluenceOracle};
use infprop_hll::{CodecError, HyperLogLog, VersionedHll, FORMAT_VERSION};
use infprop_temporal_graph::{NodeId, Timestamp, Window};
use std::io::{Read, Write};

const ORACLE_MAGIC: &[u8; 4] = b"IPAO";
const IRS_MAGIC: &[u8; 4] = b"IPAI";
const EXACT_MAGIC: &[u8; 4] = b"IPEI";
const FROZEN_EXACT_MAGIC: &[u8; 4] = b"IPFE";
const FROZEN_APPROX_MAGIC: &[u8; 4] = b"IPFA";

fn read_array<const N: usize>(r: &mut impl Read) -> Result<[u8; N], CodecError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

impl ApproxOracle {
    /// Writes the oracle (all per-node collapsed sketches) in `IPAO` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        let precision = self.precision_value();
        w.write_all(ORACLE_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, precision])?;
        let n = u32::try_from(self.num_nodes_value())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes_value() {
            w.write_all(
                self.sketch(infprop_temporal_graph::NodeId::from_index(u))
                    .registers(),
            )?;
        }
        Ok(())
    }

    /// Reads an oracle written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != ORACLE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(r)?;
        if version != FORMAT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        if !(4..=16).contains(&precision) {
            return Err(CodecError::Corrupt("precision out of range"));
        }
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let beta = 1usize << precision;
        let max_rho = 64 - precision + 1;
        let mut sketches = Vec::with_capacity(n);
        let mut registers = vec![0u8; beta];
        for _ in 0..n {
            r.read_exact(&mut registers)?;
            if registers.iter().any(|&b| b > max_rho) {
                return Err(CodecError::Corrupt("register exceeds maximal rho"));
            }
            sketches.push(HyperLogLog::from_registers(registers.clone()));
        }
        if n == 0 {
            return Ok(ApproxOracle::from_sketches(Vec::new()));
        }
        Ok(ApproxOracle::from_sketches(sketches))
    }
}

impl ApproxIrs {
    /// Writes the full sketch state (window, precision, per-node versioned
    /// HLLs) in `IPAI` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(IRS_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, self.precision()])?;
        w.write_all(&self.window().get().to_le_bytes())?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes() {
            self.sketch(infprop_temporal_graph::NodeId::from_index(u))
                .write_to(w)?;
        }
        Ok(())
    }

    /// Reads sketch state written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != IRS_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(r)?;
        if version != FORMAT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let mut sketches = Vec::with_capacity(n);
        for _ in 0..n {
            let sketch = VersionedHll::read_from(r)?;
            if sketch.precision() != precision {
                return Err(CodecError::Corrupt("mixed sketch precisions"));
            }
            sketches.push(sketch);
        }
        Ok(ApproxIrs::from_parts(window, precision, sketches))
    }
}

impl ExactIrs {
    /// Writes the exact summaries (window + per-node `(v, λ)` maps) in
    /// `IPEI` format. Entries are written in ascending `v` order so the
    /// output is byte-deterministic.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(EXACT_MAGIC)?;
        w.write_all(&[FORMAT_VERSION])?;
        w.write_all(&self.window().get().to_le_bytes())?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes() {
            let summary = self.summary(NodeId::from_index(u));
            let len = u32::try_from(summary.len())
                .map_err(|_| CodecError::Corrupt("summary too long to encode"))?;
            w.write_all(&len.to_le_bytes())?;
            // Dense summaries are already in ascending v order.
            for &(v, t) in summary {
                w.write_all(&v.0.to_le_bytes())?;
                w.write_all(&t.get().to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Reads summaries written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != EXACT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version] = read_array::<1>(r)?;
        if version != FORMAT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let mut summaries = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
            if len > n {
                return Err(CodecError::Corrupt("summary larger than node universe"));
            }
            let mut summary: ExactSummary = Vec::with_capacity(len);
            for _ in 0..len {
                let v = NodeId(u32::from_le_bytes(read_array(r)?));
                if v.index() >= n {
                    return Err(CodecError::Corrupt("summary entry outside universe"));
                }
                let t = Timestamp(i64::from_le_bytes(read_array(r)?));
                match summary.last() {
                    Some(&(prev, _)) if prev == v => {
                        return Err(CodecError::Corrupt("duplicate summary entry"));
                    }
                    Some(&(prev, _)) if prev > v => {
                        return Err(CodecError::Corrupt("summary entries out of order"));
                    }
                    _ => {}
                }
                summary.push((v, t));
            }
            summaries.push(summary);
        }
        Ok(ExactIrs::from_parts(window, summaries))
    }
}

impl FrozenExactOracle {
    /// Writes the CSR arena verbatim in `IPFE` format: header, the whole
    /// offset array, then the whole flat entry array — two bulk writes, so
    /// the file layout mirrors the in-memory arena byte for byte.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(FROZEN_EXACT_MAGIC)?;
        w.write_all(&[FORMAT_VERSION])?;
        w.write_all(&self.window().get().to_le_bytes())?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        let total = u64::try_from(self.total_entries())
            .map_err(|_| CodecError::Corrupt("too many entries to encode"))?;
        w.write_all(&total.to_le_bytes())?;
        let mut buf = Vec::with_capacity(self.offsets().len() * 4);
        for &o in self.offsets() {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        w.write_all(&buf)?;
        buf.clear();
        buf.reserve(self.total_entries() * 12);
        for &(v, t) in self.entries() {
            buf.extend_from_slice(&v.0.to_le_bytes());
            buf.extend_from_slice(&t.get().to_le_bytes());
        }
        w.write_all(&buf)?;
        Ok(())
    }

    /// Reads an arena written by [`write_to`](Self::write_to). The load
    /// path is two bulk reads straight into the flat arrays — **no
    /// per-node allocation** — followed by the same invariant validation
    /// the live summaries get (monotone offsets framing the entry array,
    /// each node's slice sorted with no self-entry, every target inside
    /// the universe).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != FROZEN_EXACT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version] = read_array::<1>(r)?;
        if version != FORMAT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let total = u64::from_le_bytes(read_array(r)?);
        if total > u64::from(u32::MAX) {
            return Err(CodecError::Corrupt("entry count exceeds arena limit"));
        }
        let total = usize::try_from(total)
            .map_err(|_| CodecError::Corrupt("entry count exceeds arena limit"))?;
        let mut bytes = vec![0u8; (n + 1) * 4];
        r.read_exact(&mut bytes)?;
        let mut offsets = Vec::with_capacity(n + 1);
        for c in bytes.chunks_exact(4) {
            offsets.push(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
        let last = offsets.last().map(|&e| e as usize); // xtask-allow: no-lossy-cast (u32 fits usize)
        if offsets.first() != Some(&0) || last != Some(total) {
            return Err(CodecError::Corrupt("offsets do not frame the entries"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(CodecError::Corrupt("offsets not monotone"));
        }
        let mut bytes = vec![0u8; total * 12];
        r.read_exact(&mut bytes)?;
        let mut entries = Vec::with_capacity(total);
        for c in bytes.chunks_exact(12) {
            let v = NodeId(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
            if v.index() >= n {
                return Err(CodecError::Corrupt("entry outside universe"));
            }
            let t = Timestamp(i64::from_le_bytes([
                c[4], c[5], c[6], c[7], c[8], c[9], c[10], c[11],
            ]));
            entries.push((v, t));
        }
        let arena = FrozenExactOracle::from_parts(window, offsets, entries);
        arena
            .validate()
            .map_err(|_| CodecError::Corrupt("frozen summary violates paper invariants"))?;
        Ok(arena)
    }
}

impl FrozenApproxOracle {
    /// Writes the flat register arena in `IPFA` format: header + the whole
    /// `n · β`-byte arena in one bulk write. Per-node estimates are *not*
    /// stored — they are a pure function of the registers and are
    /// recomputed on load, keeping the file minimal and unfakeable.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(FROZEN_APPROX_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, self.precision()])?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        w.write_all(self.registers())?;
        Ok(())
    }

    /// Reads an arena written by [`write_to`](Self::write_to): one bulk
    /// read into the flat register array (no per-node allocation), a range
    /// check on every register, then one estimator pass to rebuild the
    /// per-node `individual` table — bit-identical to the values frozen
    /// from the live sketches.
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != FROZEN_APPROX_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(r)?;
        if version != FORMAT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        if !(4..=16).contains(&precision) {
            return Err(CodecError::Corrupt("precision out of range"));
        }
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let beta = 1usize << precision;
        let max_rho = 64 - precision + 1;
        let mut registers = vec![0u8; n * beta];
        r.read_exact(&mut registers)?;
        if registers.iter().any(|&b| b > max_rho) {
            return Err(CodecError::Corrupt("register exceeds maximal rho"));
        }
        Ok(FrozenApproxOracle::from_registers_arena(
            precision, registers,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::{InteractionNetwork, NodeId};

    fn network() -> InteractionNetwork {
        InteractionNetwork::from_triples((0..500u32).map(|i| (i % 40, (i * 13 + 1) % 40, i as i64)))
    }

    #[test]
    fn oracle_roundtrip_preserves_queries() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(100), 7);
        let oracle = irs.oracle();
        let mut bytes = Vec::new();
        oracle.write_to(&mut bytes).unwrap();
        let back = ApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        use crate::oracle::InfluenceOracle;
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(oracle.influence(&seeds), back.influence(&seeds));
        for u in net.node_ids() {
            assert_eq!(oracle.individual(u), back.individual(u));
        }
    }

    #[test]
    fn irs_roundtrip_preserves_everything() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(250), 6);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        let back = ApproxIrs::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.window(), irs.window());
        assert_eq!(back.precision(), irs.precision());
        assert_eq!(back.num_nodes(), irs.num_nodes());
        for u in net.node_ids() {
            assert_eq!(back.sketch(u), irs.sketch(u));
        }
    }

    #[test]
    fn empty_oracle_roundtrips() {
        let oracle = ApproxOracle::from_sketches(Vec::new());
        let mut bytes = Vec::new();
        oracle.write_to(&mut bytes).unwrap();
        let back = ApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        use crate::oracle::InfluenceOracle;
        assert_eq!(back.num_nodes(), 0);
    }

    #[test]
    fn cross_format_magic_rejected() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(10), 5);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        // Reading an IRS file as an oracle fails on magic.
        assert!(matches!(
            ApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn exact_irs_roundtrip() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(300));
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        let back = ExactIrs::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.window(), irs.window());
        assert_eq!(back.num_nodes(), irs.num_nodes());
        for u in net.node_ids() {
            assert_eq!(back.irs_sorted(u), irs.irs_sorted(u));
            for v in net.node_ids() {
                assert_eq!(back.lambda(u, v), irs.lambda(u, v));
            }
        }
        // Byte-deterministic output.
        let mut again = Vec::new();
        irs.write_to(&mut again).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn exact_irs_corrupt_entry_rejected() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(50));
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        // Clobber the node-count field to a smaller universe: summary
        // entries then point outside it.
        bytes[13] = 1;
        bytes[14] = 0;
        bytes[15] = 0;
        bytes[16] = 0;
        assert!(ExactIrs::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn frozen_exact_roundtrip_preserves_queries() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(300));
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        let back = FrozenExactOracle::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, frozen);
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            back.influence(&seeds).to_bits()
        );
        for u in net.node_ids() {
            assert_eq!(frozen.individual(u).to_bits(), back.individual(u).to_bits());
        }
        // Byte-deterministic output.
        let mut again = Vec::new();
        frozen.write_to(&mut again).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn frozen_approx_roundtrip_preserves_queries() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        let back = FrozenApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, frozen);
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            back.influence(&seeds).to_bits()
        );
        for u in net.node_ids() {
            assert_eq!(frozen.individual(u).to_bits(), back.individual(u).to_bits());
        }
    }

    #[test]
    fn frozen_bad_version_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes[4] = 99; // the version byte follows the 4-byte magic
        assert!(matches!(
            FrozenExactOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadVersion(99))
        ));
    }

    #[test]
    fn frozen_cross_format_magic_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn frozen_exact_corrupt_offsets_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // Offsets start after magic(4) + version(1) + window(8) + n(4) +
        // total(8) = byte 25; offsets[0] must be zero.
        bytes[25] = 1;
        assert!(matches!(
            FrozenExactOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn frozen_approx_corrupt_register_rejected() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // Registers start after magic(4) + version/precision(2) + n(4) =
        // byte 10; max ρ for k = 7 is 58.
        bytes[10] = 63;
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_frozen_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(FrozenExactOracle::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncated_irs_rejected() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(10), 5);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(ApproxIrs::read_from(&mut bytes.as_slice()).is_err());
    }
}
