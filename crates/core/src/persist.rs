//! Persistence for the build-once / query-many structures.
//!
//! Building an [`ApproxIrs`](crate::ApproxIrs) costs one pass over the full
//! interaction log; the resulting sketches are small. These codecs let an
//! application precompute the sketches offline and serve
//! influence-oracle queries from a file:
//!
//! * [`ApproxOracle`]: `"IPAO"` header + per-node raw HLL registers — the
//!   minimal artefact needed to answer `Inf(S)` queries.
//! * [`ApproxIrs`]: `"IPAI"` header + window + per-node versioned-HLL
//!   blocks — the full sketch state, from which the oracle can be rebuilt
//!   and per-node estimates queried.
//! * [`FrozenExactOracle`]: `"IPFE"` v2 — the arena image verbatim
//!   (64-byte-aligned header, offset, and entry sections). The file **is**
//!   the in-memory arena, so loading borrows it wholesale: one bulk read,
//!   or a zero-copy memory map under `--features mmap`, with **no
//!   per-node allocation**. Version-1 (unaligned) files still load.
//! * [`FrozenApproxOracle`]: `"IPFA"` v3 — the register arena image
//!   verbatim (aligned header, node-major register, tile-major register,
//!   and per-node estimate sections), borrowed the same way. Version-1/2
//!   files still load, their derived sections recomputed.
//!
//! Formats are little-endian and validated on read (magic, version,
//! precision, per-sketch/per-summary invariants) via [`CodecError`].
//! Current-version frozen arenas get *structural* checks on load; their
//! deep per-byte invariants are checked by an explicit `validate()` call
//! on the load paths that consume untrusted files (the layered
//! `open_layered` readers, the CLI loaders).
//!
//! # Layered oracle directories
//!
//! A [`LayeredExactOracle`]/[`LayeredApproxOracle`] persists as a
//! *directory* of generation-stamped files rather than a single blob:
//!
//! * `gen-N.arena` — the frozen base arena of generation `N` (`IPFE` or
//!   `IPFA`, unchanged formats);
//! * `gen-N.tail` / `gen-N.pending` — interaction logs (`"IPIL"`: 16-byte
//!   little-endian `(src, dst, time)` records) holding the window tail and
//!   the forward appends;
//! * `MANIFEST` — the `"IPMF"` commit record naming the live generation,
//!   the oracle kind, the base frontier, and the window.
//!
//! Every file is written to a `.tmp` sibling and atomically renamed into
//! place, and the `MANIFEST` is written **last**: a crash anywhere during a
//! save or compaction leaves the previous manifest pointing at the
//! previous generation's complete files, which remain loadable. Stale
//! generations are swept only after the manifest commit.

use crate::approx::ApproxIrs;
use crate::arena::ArenaBytes;
use crate::delta::{LayeredApproxOracle, LayeredExactOracle};
use crate::engine::ExactSummary;
use crate::exact::ExactIrs;
use crate::frozen::layout;
use crate::frozen::{FrozenApproxOracle, FrozenExactOracle};
use crate::oracle::ApproxOracle;
use infprop_hll::{validate_version, CodecError, HyperLogLog, VersionedHll, FORMAT_VERSION};
use infprop_temporal_graph::{Interaction, NodeId, Timestamp, Window};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const ORACLE_MAGIC: &[u8; 4] = b"IPAO";
const IRS_MAGIC: &[u8; 4] = b"IPAI";
const EXACT_MAGIC: &[u8; 4] = b"IPEI";
const MANIFEST_MAGIC: &[u8; 4] = b"IPMF";
const LOG_MAGIC: &[u8; 4] = b"IPIL";

/// File name of the layered-directory commit record.
pub const MANIFEST_FILE: &str = "MANIFEST";

fn read_array<const N: usize>(r: &mut impl Read) -> Result<[u8; N], CodecError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

impl ApproxOracle {
    /// Writes the oracle (all per-node collapsed sketches) in `IPAO` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        let precision = self.precision_value();
        w.write_all(ORACLE_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, precision])?;
        let n = u32::try_from(self.num_nodes_value())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes_value() {
            w.write_all(
                self.sketch(infprop_temporal_graph::NodeId::from_index(u))
                    .registers(),
            )?;
        }
        Ok(())
    }

    /// Reads an oracle written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != ORACLE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(r)?;
        validate_version(version)?;
        if !(4..=16).contains(&precision) {
            return Err(CodecError::Corrupt("precision out of range"));
        }
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let beta = 1usize << precision;
        let max_rho = 64 - precision + 1;
        let mut sketches = Vec::with_capacity(n);
        let mut registers = vec![0u8; beta];
        for _ in 0..n {
            r.read_exact(&mut registers)?;
            if registers.iter().any(|&b| b > max_rho) {
                return Err(CodecError::Corrupt("register exceeds maximal rho"));
            }
            sketches.push(HyperLogLog::from_registers(registers.clone()));
        }
        if n == 0 {
            return Ok(ApproxOracle::from_sketches(Vec::new()));
        }
        Ok(ApproxOracle::from_sketches(sketches))
    }
}

impl ApproxIrs {
    /// Writes the full sketch state (window, precision, per-node versioned
    /// HLLs) in `IPAI` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(IRS_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, self.precision()])?;
        w.write_all(&self.window().get().to_le_bytes())?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes() {
            self.sketch(infprop_temporal_graph::NodeId::from_index(u))
                .write_to(w)?;
        }
        Ok(())
    }

    /// Reads sketch state written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != IRS_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(r)?;
        validate_version(version)?;
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let mut sketches = Vec::with_capacity(n);
        for _ in 0..n {
            let sketch = VersionedHll::read_from(r)?;
            if sketch.precision() != precision {
                return Err(CodecError::Corrupt("mixed sketch precisions"));
            }
            sketches.push(sketch);
        }
        Ok(ApproxIrs::from_parts(window, precision, sketches))
    }
}

impl ExactIrs {
    /// Writes the exact summaries (window + per-node `(v, λ)` maps) in
    /// `IPEI` format. Entries are written in ascending `v` order so the
    /// output is byte-deterministic.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(EXACT_MAGIC)?;
        w.write_all(&[FORMAT_VERSION])?;
        w.write_all(&self.window().get().to_le_bytes())?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes() {
            let summary = self.summary(NodeId::from_index(u));
            let len = u32::try_from(summary.len())
                .map_err(|_| CodecError::Corrupt("summary too long to encode"))?;
            w.write_all(&len.to_le_bytes())?;
            // Dense summaries are already in ascending v order.
            for &(v, t) in summary {
                w.write_all(&v.0.to_le_bytes())?;
                w.write_all(&t.get().to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Reads summaries written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != EXACT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version] = read_array::<1>(r)?;
        validate_version(version)?;
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let mut summaries = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
            if len > n {
                return Err(CodecError::Corrupt("summary larger than node universe"));
            }
            let mut summary: ExactSummary = Vec::with_capacity(len);
            for _ in 0..len {
                let v = NodeId(u32::from_le_bytes(read_array(r)?));
                if v.index() >= n {
                    return Err(CodecError::Corrupt("summary entry outside universe"));
                }
                let t = Timestamp(i64::from_le_bytes(read_array(r)?));
                match summary.last() {
                    Some(&(prev, _)) if prev == v => {
                        return Err(CodecError::Corrupt("duplicate summary entry"));
                    }
                    Some(&(prev, _)) if prev > v => {
                        return Err(CodecError::Corrupt("summary entries out of order"));
                    }
                    _ => {}
                }
                summary.push((v, t));
            }
            summaries.push(summary);
        }
        Ok(ExactIrs::from_parts(window, summaries))
    }
}

/// Current `IPFE` layout version. Version 1 packed the sections directly
/// after the header; version 2 (this build) starts every section on a
/// 64-byte boundary so the file image **is** the in-memory arena — loads
/// borrow it wholesale (zero-copy under `--features mmap`). Version-1
/// files remain loadable (decoded and re-framed into a v2 image); versions
/// beyond 2 are rejected as [`CodecError::FutureVersion`].
pub const FROZEN_EXACT_LAYOUT_VERSION: u8 = layout::EXACT_VERSION;

/// Current `IPFA` layout version. Version 1 stored only the node-major
/// register arena; version 2 appended the register-transposed (tile-major)
/// section; version 3 (this build) aligns every section to 64 bytes and
/// appends the per-node estimate table, making the file image identical to
/// the in-memory arena. Versions 1 and 2 remain loadable (derived sections
/// are recomputed); versions beyond 3 are rejected as
/// [`CodecError::FutureVersion`]. Local to the frozen formats — every
/// other codec stays at the workspace-wide [`FORMAT_VERSION`].
pub const FROZEN_APPROX_LAYOUT_VERSION: u8 = layout::APPROX_VERSION;

impl FrozenExactOracle {
    /// Writes the arena in `IPFE` v2 format — one bulk write of the
    /// in-memory image, which already is the file layout byte for byte
    /// (64-byte-aligned header, offset, and entry sections).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(self.image())?;
        Ok(())
    }

    /// Reads an arena written by [`write_to`](Self::write_to) (layout
    /// version 2) or by the pre-alignment writer (version 1).
    ///
    /// A v2 image is adopted wholesale after *structural* validation —
    /// magic, version, section framing, monotone offsets — with **no
    /// per-node work and no decode pass**. The deeper per-entry invariants
    /// (sorted summaries, no self-entries, targets inside the universe)
    /// are deliberately left to an explicit [`validate`] call, which the
    /// layered [`open_layered`] paths and the CLI loaders make; callers
    /// handing queries untrusted bytes should do the same. A v1 file is
    /// decoded, deep-checked, and re-framed into a canonical v2 image.
    ///
    /// [`validate`]: FrozenExactOracle::validate
    /// [`open_layered`]: LayeredExactOracle::open_layered
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_arena_bytes(ArenaBytes::from_vec(bytes))
    }

    /// Loads an `IPFE` file for querying: the image is acquired through
    /// [`ArenaBytes::open`] — a borrowed memory map under `--features
    /// mmap`, one aligned bulk read otherwise — and adopted with the same
    /// structural checks as [`read_from`](Self::read_from).
    pub fn load(path: &Path) -> Result<Self, CodecError> {
        Self::from_arena_bytes(ArenaBytes::open(path)?)
    }

    /// The shared load path: validates the header and section framing of
    /// `data`, then borrows it as the arena.
    fn from_arena_bytes(data: ArenaBytes) -> Result<Self, CodecError> {
        let mut r: &[u8] = &data;
        let magic: [u8; 4] = read_array(&mut r)?;
        if &magic != layout::EXACT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version] = read_array::<1>(&mut r)?;
        match version {
            1 => return Self::read_v1_body(&mut r),
            layout::EXACT_VERSION => {}
            v if v > layout::EXACT_VERSION => return Err(CodecError::FutureVersion(v)),
            v => return Err(CodecError::BadVersion(v)),
        }
        let window = Window::try_new(i64::from_le_bytes(read_array(&mut r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(&mut r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let total = u64::from_le_bytes(read_array(&mut r)?);
        if total > u64::from(u32::MAX) {
            return Err(CodecError::Corrupt("entry count exceeds arena limit"));
        }
        let total = usize::try_from(total)
            .map_err(|_| CodecError::Corrupt("entry count exceeds arena limit"))?;
        let (offsets_at, _, image_len) = layout::exact_sections(n, total);
        if data.len() != image_len {
            return Err(CodecError::Corrupt(
                "arena length disagrees with its header",
            ));
        }
        let off = &data[offsets_at..offsets_at + (n + 1) * 4];
        let at = |i: usize| {
            u32::from_le_bytes([off[4 * i], off[4 * i + 1], off[4 * i + 2], off[4 * i + 3]])
        };
        let end = at(n) as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
        if at(0) != 0 || end != total {
            return Err(CodecError::Corrupt("offsets do not frame the entries"));
        }
        if (1..=n).any(|i| at(i - 1) > at(i)) {
            return Err(CodecError::Corrupt("offsets not monotone"));
        }
        Ok(FrozenExactOracle::from_image(window, n, total, data))
    }

    /// Decodes the body of a layout-version-1 file (sections packed
    /// directly after the header) with the deep per-entry checks the v1
    /// reader always made, then re-frames it into a canonical v2 image.
    fn read_v1_body(r: &mut impl Read) -> Result<Self, CodecError> {
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let total = u64::from_le_bytes(read_array(r)?);
        if total > u64::from(u32::MAX) {
            return Err(CodecError::Corrupt("entry count exceeds arena limit"));
        }
        let total = usize::try_from(total)
            .map_err(|_| CodecError::Corrupt("entry count exceeds arena limit"))?;
        let mut bytes = vec![0u8; (n + 1) * 4];
        r.read_exact(&mut bytes)?;
        let mut offsets = Vec::with_capacity(n + 1);
        for c in bytes.chunks_exact(4) {
            offsets.push(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
        let last = offsets.last().map(|&e| e as usize); // xtask-allow: no-lossy-cast (u32 fits usize)
        if offsets.first() != Some(&0) || last != Some(total) {
            return Err(CodecError::Corrupt("offsets do not frame the entries"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(CodecError::Corrupt("offsets not monotone"));
        }
        let mut bytes = vec![0u8; total * 12];
        r.read_exact(&mut bytes)?;
        let mut entries = Vec::with_capacity(total);
        for c in bytes.chunks_exact(12) {
            let v = NodeId(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
            if v.index() >= n {
                return Err(CodecError::Corrupt("entry outside universe"));
            }
            let t = Timestamp(i64::from_le_bytes([
                c[4], c[5], c[6], c[7], c[8], c[9], c[10], c[11],
            ]));
            entries.push((v, t));
        }
        let arena = FrozenExactOracle::from_parts(window, offsets, entries);
        arena
            .validate()
            .map_err(|_| CodecError::Corrupt("frozen summary violates paper invariants"))?;
        Ok(arena)
    }
}

impl FrozenApproxOracle {
    /// Writes the arena in `IPFA` v3 format — one bulk write of the
    /// in-memory image (64-byte-aligned header, node-major register,
    /// tile-major register, and per-node estimate sections).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(self.image())?;
        Ok(())
    }

    /// Reads an arena written by [`write_to`](Self::write_to) (layout
    /// version 3) or by the earlier writers (versions 1 and 2).
    ///
    /// A v3 image is adopted wholesale after *structural* validation —
    /// magic, version, precision range, section framing — with **no
    /// per-node work**. The per-byte invariants (register range, the
    /// derived tile-major and estimate sections matching the registers)
    /// are deliberately left to an explicit [`validate`] call, which the
    /// layered [`open_layered`] paths and the CLI loaders make; callers
    /// handing queries untrusted bytes should do the same. v1/v2 files
    /// are decoded with their original deep checks and their derived
    /// sections recomputed into a canonical v3 image.
    ///
    /// [`validate`]: FrozenApproxOracle::validate
    /// [`open_layered`]: LayeredApproxOracle::open_layered
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_arena_bytes(ArenaBytes::from_vec(bytes))
    }

    /// Loads an `IPFA` file for querying: the image is acquired through
    /// [`ArenaBytes::open`] — a borrowed memory map under `--features
    /// mmap`, one aligned bulk read otherwise — and adopted with the same
    /// structural checks as [`read_from`](Self::read_from).
    pub fn load(path: &Path) -> Result<Self, CodecError> {
        Self::from_arena_bytes(ArenaBytes::open(path)?)
    }

    /// The shared load path: validates the header and section framing of
    /// `data`, then borrows it as the arena.
    fn from_arena_bytes(data: ArenaBytes) -> Result<Self, CodecError> {
        let mut r: &[u8] = &data;
        let magic: [u8; 4] = read_array(&mut r)?;
        if &magic != layout::APPROX_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(&mut r)?;
        match version {
            1 | 2 => return Self::read_legacy_body(version, precision, &mut r),
            layout::APPROX_VERSION => {}
            v if v > layout::APPROX_VERSION => return Err(CodecError::FutureVersion(v)),
            v => return Err(CodecError::BadVersion(v)),
        }
        if !(4..=16).contains(&precision) {
            return Err(CodecError::Corrupt("precision out of range"));
        }
        let n = u32::from_le_bytes(read_array(&mut r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let beta = 1usize << precision;
        let (_, _, _, image_len) = layout::approx_sections(n, beta);
        if data.len() != image_len {
            return Err(CodecError::Corrupt(
                "arena length disagrees with its header",
            ));
        }
        Ok(FrozenApproxOracle::from_image(precision, n, data))
    }

    /// Decodes the body of a layout-version-1/2 file (unaligned register
    /// sections after the header) with the deep checks those readers
    /// always made — register range, and for v2 the stored transposed
    /// section matching the node-major registers — then recomputes the
    /// derived sections into a canonical v3 image.
    fn read_legacy_body(version: u8, precision: u8, r: &mut impl Read) -> Result<Self, CodecError> {
        if !(4..=16).contains(&precision) {
            return Err(CodecError::Corrupt("precision out of range"));
        }
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let beta = 1usize << precision;
        let max_rho = 64 - precision + 1;
        let mut registers = vec![0u8; n * beta];
        r.read_exact(&mut registers)?;
        if registers.iter().any(|&b| b > max_rho) {
            return Err(CodecError::Corrupt("register exceeds maximal rho"));
        }
        if version == 2 {
            let mut transposed = vec![0u8; n * beta];
            r.read_exact(&mut transposed)?;
            if transposed != crate::frozen::transpose_registers(precision, &registers) {
                return Err(CodecError::Corrupt(
                    "transposed section does not match the node-major registers",
                ));
            }
        }
        Ok(FrozenApproxOracle::from_registers_arena(
            precision, registers,
        ))
    }
}

/// Which layered oracle family a directory holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayeredKind {
    /// [`LayeredExactOracle`] over an `IPFE` base arena.
    Exact,
    /// [`LayeredApproxOracle`] over an `IPFA` base arena.
    Approx,
}

/// The `MANIFEST` commit record of a layered oracle directory (`"IPMF"`).
///
/// Naming the live generation here — and writing the manifest last — is
/// what makes saves and compactions crash-safe: until the manifest rename
/// lands, readers keep resolving the previous generation's files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayeredManifest {
    /// Which oracle family the directory holds.
    pub kind: LayeredKind,
    /// Newest timestamp frozen into the base arena (`None` for an empty
    /// base). Appends only touch the pending log, so this changes only at
    /// compaction.
    pub base_frontier: Option<Timestamp>,
    /// The live generation: `gen-N.{arena,tail,pending}` are the current
    /// files.
    pub generation: u64,
    /// The channel window `ω` (the `IPFA` arena does not carry it).
    pub window: Window,
}

impl LayeredManifest {
    /// Writes the commit record in `IPMF` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(MANIFEST_MAGIC)?;
        let kind = match self.kind {
            LayeredKind::Exact => 0u8,
            LayeredKind::Approx => 1u8,
        };
        w.write_all(&[FORMAT_VERSION, kind, u8::from(self.base_frontier.is_some())])?;
        w.write_all(&self.base_frontier.map_or(0, |t| t.get()).to_le_bytes())?;
        w.write_all(&self.generation.to_le_bytes())?;
        w.write_all(&self.window.get().to_le_bytes())?;
        Ok(())
    }

    /// Reads a record written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let magic: [u8; 4] = read_array(r)?;
        if &magic != MANIFEST_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, kind, has_frontier] = read_array::<3>(r)?;
        validate_version(version)?;
        let kind = match kind {
            0 => LayeredKind::Exact,
            1 => LayeredKind::Approx,
            _ => return Err(CodecError::Corrupt("unknown layered oracle kind")),
        };
        let frontier_raw = i64::from_le_bytes(read_array(r)?);
        let base_frontier = match has_frontier {
            0 => None,
            1 => Some(Timestamp(frontier_raw)),
            _ => return Err(CodecError::Corrupt("manifest frontier flag must be 0 or 1")),
        };
        let generation = u64::from_le_bytes(read_array(r)?);
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        Ok(LayeredManifest {
            kind,
            base_frontier,
            generation,
            window,
        })
    }

    /// Reads the `MANIFEST` of a layered directory — the cheap probe the
    /// CLI uses to detect the stored format before loading the arenas.
    pub fn read_from_dir(dir: &Path) -> Result<Self, CodecError> {
        Self::read_from(&mut fs::read(dir.join(MANIFEST_FILE))?.as_slice())
    }
}

/// Writes a time-sorted interaction log in `IPIL` format: header + count +
/// 16-byte `(src: u32, dst: u32, time: i64)` little-endian records.
fn write_interactions(w: &mut impl Write, ints: &[Interaction]) -> Result<(), CodecError> {
    w.write_all(LOG_MAGIC)?;
    w.write_all(&[FORMAT_VERSION])?;
    let n = u64::try_from(ints.len())
        .map_err(|_| CodecError::Corrupt("too many interactions to encode"))?;
    w.write_all(&n.to_le_bytes())?;
    let mut buf = Vec::with_capacity(ints.len() * 16);
    for i in ints {
        buf.extend_from_slice(&i.src.0.to_le_bytes());
        buf.extend_from_slice(&i.dst.0.to_le_bytes());
        buf.extend_from_slice(&i.time.get().to_le_bytes());
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a log written by [`write_interactions`], validating the explicit
/// count (truncation detection) and ascending time order.
fn read_interactions(r: &mut impl Read) -> Result<Vec<Interaction>, CodecError> {
    let magic: [u8; 4] = read_array(r)?;
    if &magic != LOG_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let [version] = read_array::<1>(r)?;
    validate_version(version)?;
    let n = u64::from_le_bytes(read_array(r)?);
    let n = usize::try_from(n).map_err(|_| CodecError::Corrupt("log too large for this target"))?;
    let mut bytes = vec![0u8; n * 16];
    r.read_exact(&mut bytes)?;
    let mut ints = Vec::with_capacity(n);
    for c in bytes.chunks_exact(16) {
        let src = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let dst = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let time = i64::from_le_bytes([c[8], c[9], c[10], c[11], c[12], c[13], c[14], c[15]]);
        let i = Interaction::from_raw(src, dst, time);
        if let Some(prev) = ints.last() {
            let prev: &Interaction = prev;
            if i.time < prev.time {
                return Err(CodecError::Corrupt("interaction log is not sorted by time"));
            }
        }
        ints.push(i);
    }
    Ok(ints)
}

/// Path of one generation-stamped file inside a layered directory.
fn gen_file(dir: &Path, generation: u64, suffix: &str) -> PathBuf {
    dir.join(format!("gen-{generation}.{suffix}"))
}

/// Writes `bytes` to `path` via a `.tmp` sibling and an atomic rename, so
/// readers only ever observe complete files.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CodecError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Best-effort removal of files from generations other than `keep` (and of
/// orphaned `.tmp` files): crash leftovers and the pre-compaction
/// generation, swept only *after* the manifest commit. Errors are ignored —
/// a stale file is wasted disk, never a correctness problem.
fn sweep_stale_generations(dir: &Path, keep: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let keep_prefix = format!("gen-{keep}.");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let stale_gen = name.starts_with("gen-") && !name.starts_with(&keep_prefix);
        let orphan_tmp = name.ends_with(".tmp");
        if (stale_gen || orphan_tmp) && name != MANIFEST_FILE {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Validates that `tail ++ pending` is one ascending log across the file
/// boundary (each file is already internally sorted).
fn validate_log_boundary(tail: &[Interaction], pending: &[Interaction]) -> Result<(), CodecError> {
    if let (Some(last), Some(first)) = (tail.last(), pending.first()) {
        if first.time < last.time {
            return Err(CodecError::Corrupt(
                "pending log starts before the tail ends",
            ));
        }
    }
    Ok(())
}

impl LayeredExactOracle {
    /// Saves the full layered state into `dir` (created if missing):
    /// `gen-N.arena`, `gen-N.tail`, `gen-N.pending`, then the `MANIFEST`
    /// commit; previous generations are swept after the commit. Safe to
    /// call while [stale](Self::is_stale) — the logs carry the un-refreshed
    /// appends and [`open_layered`](Self::open_layered) rebuilds the
    /// overlay.
    pub fn save_layered(&self, dir: &Path) -> Result<(), CodecError> {
        fs::create_dir_all(dir)?;
        let g = self.generation();
        let mut bytes = Vec::new();
        self.base().write_to(&mut bytes)?;
        write_atomic(&gen_file(dir, g, "arena"), &bytes)?;
        bytes.clear();
        write_interactions(&mut bytes, self.delta().tail())?;
        write_atomic(&gen_file(dir, g, "tail"), &bytes)?;
        self.persist_pending(dir)?;
        let manifest = LayeredManifest {
            kind: LayeredKind::Exact,
            base_frontier: self.delta().base_frontier(),
            generation: g,
            window: self.window(),
        };
        bytes.clear();
        manifest.write_to(&mut bytes)?;
        write_atomic(&dir.join(MANIFEST_FILE), &bytes)?;
        sweep_stale_generations(dir, g);
        Ok(())
    }

    /// Rewrites only `gen-N.pending` — the cheap per-append persistence
    /// path. The arena, tail, and manifest are immutable between
    /// compactions, so buffered appends are durable after this one atomic
    /// file swap.
    pub fn persist_pending(&self, dir: &Path) -> Result<(), CodecError> {
        let mut bytes = Vec::new();
        write_interactions(&mut bytes, self.delta().pending())?;
        write_atomic(&gen_file(dir, self.generation(), "pending"), &bytes)
    }

    /// Opens a directory written by [`save_layered`](Self::save_layered),
    /// resolving the live generation through the `MANIFEST` and rebuilding
    /// the overlay from the persisted logs.
    pub fn open_layered(dir: &Path) -> Result<Self, CodecError> {
        let manifest = LayeredManifest::read_from_dir(dir)?;
        if manifest.kind != LayeredKind::Exact {
            return Err(CodecError::Corrupt(
                "directory holds an approx layered oracle",
            ));
        }
        let g = manifest.generation;
        let base = FrozenExactOracle::load(&gen_file(dir, g, "arena"))?;
        base.validate()
            .map_err(|_| CodecError::Corrupt("frozen arena violates paper invariants"))?;
        if base.window() != manifest.window {
            return Err(CodecError::Corrupt(
                "manifest window disagrees with the arena",
            ));
        }
        let tail = read_interactions(&mut fs::read(gen_file(dir, g, "tail"))?.as_slice())?;
        let pending = read_interactions(&mut fs::read(gen_file(dir, g, "pending"))?.as_slice())?;
        validate_log_boundary(&tail, &pending)?;
        Ok(Self::from_parts(
            base,
            manifest.base_frontier,
            tail,
            pending,
            g,
        ))
    }
}

impl LayeredApproxOracle {
    /// Saves the full layered state into `dir`; see
    /// [`LayeredExactOracle::save_layered`] — identical layout with an
    /// `IPFA` arena and `kind = Approx`.
    pub fn save_layered(&self, dir: &Path) -> Result<(), CodecError> {
        fs::create_dir_all(dir)?;
        let g = self.generation();
        let mut bytes = Vec::new();
        self.base().write_to(&mut bytes)?;
        write_atomic(&gen_file(dir, g, "arena"), &bytes)?;
        bytes.clear();
        write_interactions(&mut bytes, self.delta().tail())?;
        write_atomic(&gen_file(dir, g, "tail"), &bytes)?;
        self.persist_pending(dir)?;
        let manifest = LayeredManifest {
            kind: LayeredKind::Approx,
            base_frontier: self.delta().base_frontier(),
            generation: g,
            window: self.window(),
        };
        bytes.clear();
        manifest.write_to(&mut bytes)?;
        write_atomic(&dir.join(MANIFEST_FILE), &bytes)?;
        sweep_stale_generations(dir, g);
        Ok(())
    }

    /// Rewrites only `gen-N.pending`; see
    /// [`LayeredExactOracle::persist_pending`].
    pub fn persist_pending(&self, dir: &Path) -> Result<(), CodecError> {
        let mut bytes = Vec::new();
        write_interactions(&mut bytes, self.delta().pending())?;
        write_atomic(&gen_file(dir, self.generation(), "pending"), &bytes)
    }

    /// Opens a directory written by [`save_layered`](Self::save_layered).
    /// The window comes from the manifest (the register arena does not
    /// carry one).
    pub fn open_layered(dir: &Path) -> Result<Self, CodecError> {
        let manifest = LayeredManifest::read_from_dir(dir)?;
        if manifest.kind != LayeredKind::Approx {
            return Err(CodecError::Corrupt(
                "directory holds an exact layered oracle",
            ));
        }
        let g = manifest.generation;
        let base = FrozenApproxOracle::load(&gen_file(dir, g, "arena"))?;
        base.validate()
            .map_err(|_| CodecError::Corrupt("frozen register arena violates its invariants"))?;
        let tail = read_interactions(&mut fs::read(gen_file(dir, g, "tail"))?.as_slice())?;
        let pending = read_interactions(&mut fs::read(gen_file(dir, g, "pending"))?.as_slice())?;
        validate_log_boundary(&tail, &pending)?;
        Ok(Self::from_parts(
            base,
            manifest.window,
            manifest.base_frontier,
            tail,
            pending,
            g,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::InfluenceOracle;
    use infprop_temporal_graph::{InteractionNetwork, NodeId};

    fn network() -> InteractionNetwork {
        InteractionNetwork::from_triples((0..500u32).map(|i| (i % 40, (i * 13 + 1) % 40, i as i64)))
    }

    #[test]
    fn oracle_roundtrip_preserves_queries() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(100), 7);
        let oracle = irs.oracle();
        let mut bytes = Vec::new();
        oracle.write_to(&mut bytes).unwrap();
        let back = ApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        use crate::oracle::InfluenceOracle;
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(oracle.influence(&seeds), back.influence(&seeds));
        for u in net.node_ids() {
            assert_eq!(oracle.individual(u), back.individual(u));
        }
    }

    #[test]
    fn irs_roundtrip_preserves_everything() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(250), 6);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        let back = ApproxIrs::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.window(), irs.window());
        assert_eq!(back.precision(), irs.precision());
        assert_eq!(back.num_nodes(), irs.num_nodes());
        for u in net.node_ids() {
            assert_eq!(back.sketch(u), irs.sketch(u));
        }
    }

    #[test]
    fn empty_oracle_roundtrips() {
        let oracle = ApproxOracle::from_sketches(Vec::new());
        let mut bytes = Vec::new();
        oracle.write_to(&mut bytes).unwrap();
        let back = ApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        use crate::oracle::InfluenceOracle;
        assert_eq!(back.num_nodes(), 0);
    }

    #[test]
    fn cross_format_magic_rejected() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(10), 5);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        // Reading an IRS file as an oracle fails on magic.
        assert!(matches!(
            ApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn exact_irs_roundtrip() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(300));
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        let back = ExactIrs::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.window(), irs.window());
        assert_eq!(back.num_nodes(), irs.num_nodes());
        for u in net.node_ids() {
            assert_eq!(back.irs_sorted(u), irs.irs_sorted(u));
            for v in net.node_ids() {
                assert_eq!(back.lambda(u, v), irs.lambda(u, v));
            }
        }
        // Byte-deterministic output.
        let mut again = Vec::new();
        irs.write_to(&mut again).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn exact_irs_corrupt_entry_rejected() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(50));
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        // Clobber the node-count field to a smaller universe: summary
        // entries then point outside it.
        bytes[13] = 1;
        bytes[14] = 0;
        bytes[15] = 0;
        bytes[16] = 0;
        assert!(ExactIrs::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn frozen_exact_roundtrip_preserves_queries() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(300));
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        let back = FrozenExactOracle::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, frozen);
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            back.influence(&seeds).to_bits()
        );
        for u in net.node_ids() {
            assert_eq!(frozen.individual(u).to_bits(), back.individual(u).to_bits());
        }
        // Byte-deterministic output.
        let mut again = Vec::new();
        frozen.write_to(&mut again).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn frozen_approx_roundtrip_preserves_queries() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        let back = FrozenApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, frozen);
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            back.influence(&seeds).to_bits()
        );
        for u in net.node_ids() {
            assert_eq!(frozen.individual(u).to_bits(), back.individual(u).to_bits());
        }
    }

    #[test]
    fn frozen_approx_v1_file_still_loads() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        // A layout-version-1 file: header with version byte 1, node-major
        // registers, no transposed section — exactly what PR 5 wrote.
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"IPFA");
        v1.extend_from_slice(&[1, frozen.precision()]);
        v1.extend_from_slice(&u32::try_from(frozen.num_nodes()).unwrap().to_le_bytes());
        v1.extend_from_slice(frozen.registers());
        let back = FrozenApproxOracle::read_from(&mut v1.as_slice()).unwrap();
        assert_eq!(back, frozen); // derived sections recomputed on load
    }

    #[test]
    fn frozen_approx_v2_file_still_loads() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        // A layout-version-2 file: unaligned node-major then tile-major
        // register sections directly after the header — what PR 7 wrote.
        let mut v2 = Vec::new();
        v2.extend_from_slice(b"IPFA");
        v2.extend_from_slice(&[2, frozen.precision()]);
        v2.extend_from_slice(&u32::try_from(frozen.num_nodes()).unwrap().to_le_bytes());
        v2.extend_from_slice(frozen.registers());
        v2.extend_from_slice(frozen.transposed());
        let back = FrozenApproxOracle::read_from(&mut v2.as_slice()).unwrap();
        assert_eq!(back, frozen);
    }

    #[test]
    fn frozen_exact_v1_file_still_loads() {
        let frozen = ExactIrs::compute(&network(), Window(300)).freeze();
        // A layout-version-1 file: offsets and entries packed directly
        // after the header, no alignment padding — what PR 5 wrote.
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"IPFE");
        v1.push(1);
        v1.extend_from_slice(&frozen.window().get().to_le_bytes());
        v1.extend_from_slice(&u32::try_from(frozen.num_nodes()).unwrap().to_le_bytes());
        v1.extend_from_slice(&u64::try_from(frozen.total_entries()).unwrap().to_le_bytes());
        for o in frozen.offsets() {
            v1.extend_from_slice(&o.to_le_bytes());
        }
        for (v, t) in frozen.entries() {
            v1.extend_from_slice(&v.0.to_le_bytes());
            v1.extend_from_slice(&t.get().to_le_bytes());
        }
        let back = FrozenExactOracle::read_from(&mut v1.as_slice()).unwrap();
        assert_eq!(back, frozen); // re-framed into the canonical v2 image
    }

    #[test]
    fn frozen_approx_truncated_transposed_rejected() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // Chop half of the transposed section: the header promises the
        // full aligned section layout, so the structural length check must
        // fail the load — no silent fallback to recomputing.
        bytes.truncate(bytes.len() - frozen.transposed().len() / 2);
        assert!(FrozenApproxOracle::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn frozen_approx_mismatched_transposed_fails_validate() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // Flip a byte inside the transposed section only (keep it within
        // the valid register range). The structural load accepts the image;
        // the explicit deep check — which every untrusted-file path makes —
        // must catch the disagreement with the node-major registers.
        let beta = 1usize << frozen.precision();
        let (_, trans_at, _, _) = layout::approx_sections(frozen.num_nodes(), beta);
        bytes[trans_at] = if bytes[trans_at] == 1 { 2 } else { 1 };
        let back = FrozenApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        assert!(back.validate().is_err());
    }

    #[test]
    fn frozen_approx_future_layout_version_rejected() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes[4] = 4; // one past FROZEN_APPROX_LAYOUT_VERSION
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::FutureVersion(4))
        ));
        bytes[4] = 0; // below the oldest layout ever written
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadVersion(0))
        ));
    }

    #[test]
    fn frozen_future_version_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes[4] = 99; // the version byte follows the 4-byte magic
                       // Newer-than-this-build is FutureVersion ("upgrade the binary"),
                       // not corruption.
        assert!(matches!(
            FrozenExactOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::FutureVersion(99))
        ));
    }

    #[test]
    fn frozen_unknown_old_version_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes[4] = 0; // below the oldest version this build ever wrote
        assert!(matches!(
            FrozenExactOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadVersion(0))
        ));
    }

    #[test]
    fn frozen_cross_format_magic_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn frozen_exact_corrupt_offsets_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // The offset section starts at the first 64-byte boundary after
        // the 25-byte header; offsets[0] must be zero.
        let (offsets_at, _, _) = layout::exact_sections(frozen.num_nodes(), frozen.total_entries());
        bytes[offsets_at] = 1;
        assert!(matches!(
            FrozenExactOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn frozen_approx_corrupt_register_fails_validate() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // The register section starts at the first 64-byte boundary after
        // the 10-byte header; max ρ for k = 7 is 58. The structural load
        // accepts the image; the explicit deep check rejects the register.
        let beta = 1usize << frozen.precision();
        let (regs_at, _, _, _) = layout::approx_sections(frozen.num_nodes(), beta);
        bytes[regs_at] = 63;
        let back = FrozenApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        assert!(back.validate().is_err());
    }

    #[test]
    fn frozen_load_from_path_matches_read_from() {
        let dir = tempdir("load-path");
        let net = network();

        let exact = ExactIrs::compute(&net, Window(300)).freeze();
        let mut bytes = Vec::new();
        exact.write_to(&mut bytes).unwrap();
        let exact_path = dir.join("exact.arena");
        fs::write(&exact_path, &bytes).unwrap();
        let loaded = FrozenExactOracle::load(&exact_path).unwrap();
        assert_eq!(loaded, exact);
        loaded.validate().unwrap();

        let approx = ApproxIrs::compute_with_precision(&net, Window(100), 7).freeze();
        bytes.clear();
        approx.write_to(&mut bytes).unwrap();
        let approx_path = dir.join("approx.arena");
        fs::write(&approx_path, &bytes).unwrap();
        let loaded = FrozenApproxOracle::load(&approx_path).unwrap();
        assert_eq!(loaded, approx);
        loaded.validate().unwrap();

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_frozen_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(FrozenExactOracle::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncated_irs_rejected() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(10), 5);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(ApproxIrs::read_from(&mut bytes.as_slice()).is_err());
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("infprop-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn layered_exact_dir_roundtrip_preserves_queries() {
        let net = network();
        let mut oracle = LayeredExactOracle::from_network(&net, Window(120));
        let t = oracle.frontier().unwrap().get();
        oracle.append(Interaction::from_raw(1, 2, t + 5)).unwrap();
        let dir = tempdir("exact-roundtrip");
        // Saved while stale: the pending log carries the append.
        oracle.save_layered(&dir).unwrap();
        let back = LayeredExactOracle::open_layered(&dir).unwrap();
        assert_eq!(back.generation(), oracle.generation());
        assert_eq!(back.delta().pending(), oracle.delta().pending());
        assert_eq!(back.delta().tail(), oracle.delta().tail());
        assert_eq!(back.delta().base_frontier(), oracle.delta().base_frontier());
        oracle.refresh();
        for u in net.node_ids() {
            assert_eq!(back.summary(u), oracle.summary(u));
        }
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            back.influence(&seeds).to_bits(),
            oracle.influence(&seeds).to_bits()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn layered_approx_dir_roundtrip_preserves_registers() {
        let net = network();
        let mut oracle = LayeredApproxOracle::from_network_with_precision(&net, Window(120), 6);
        let t = oracle.frontier().unwrap().get();
        oracle.append(Interaction::from_raw(3, 4, t + 1)).unwrap();
        oracle.refresh();
        let dir = tempdir("approx-roundtrip");
        oracle.save_layered(&dir).unwrap();
        let back = LayeredApproxOracle::open_layered(&dir).unwrap();
        assert_eq!(back.generation(), oracle.generation());
        assert_eq!(back.window(), oracle.window());
        assert_eq!(back.base().registers(), oracle.base().registers());
        assert_eq!(back.overlay().registers(), oracle.overlay().registers());
        for u in net.node_ids() {
            assert_eq!(back.individual(u).to_bits(), oracle.individual(u).to_bits());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn layered_manifest_roundtrip_and_kind_mismatch() {
        let manifest = LayeredManifest {
            kind: LayeredKind::Approx,
            base_frontier: Some(Timestamp(-7)),
            generation: 3,
            window: Window(42),
        };
        let mut bytes = Vec::new();
        manifest.write_to(&mut bytes).unwrap();
        assert_eq!(
            LayeredManifest::read_from(&mut bytes.as_slice()).unwrap(),
            manifest
        );

        let net = network();
        let oracle = LayeredExactOracle::from_network(&net, Window(60));
        let dir = tempdir("kind-mismatch");
        oracle.save_layered(&dir).unwrap();
        assert_eq!(
            LayeredManifest::read_from_dir(&dir).unwrap().kind,
            LayeredKind::Exact
        );
        assert!(matches!(
            LayeredApproxOracle::open_layered(&dir),
            Err(CodecError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_pending_is_durable_without_full_save() {
        let net = network();
        let mut oracle = LayeredExactOracle::from_network(&net, Window(90));
        let dir = tempdir("pending-only");
        oracle.save_layered(&dir).unwrap();
        let t = oracle.frontier().unwrap().get();
        oracle.append(Interaction::from_raw(5, 6, t + 2)).unwrap();
        oracle.persist_pending(&dir).unwrap();
        let back = LayeredExactOracle::open_layered(&dir).unwrap();
        assert_eq!(back.delta().pending(), oracle.delta().pending());
        assert!(!back.is_stale());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_compaction_leaves_previous_generation_loadable() {
        let net = network();
        let mut oracle = LayeredExactOracle::from_network(&net, Window(90));
        let t = oracle.frontier().unwrap().get();
        oracle.append(Interaction::from_raw(7, 8, t + 3)).unwrap();
        oracle.refresh();
        let dir = tempdir("crash-safety");
        oracle.save_layered(&dir).unwrap();

        // Simulate a compaction that crashed after writing the next
        // generation's arena but before the manifest commit: a partial
        // (truncated) gen-1 arena plus an orphaned tmp file.
        let mut compacted = oracle.clone();
        compacted.compact();
        let mut arena = Vec::new();
        compacted.base().write_to(&mut arena).unwrap();
        arena.truncate(arena.len() / 2);
        fs::write(gen_file(&dir, 1, "arena"), &arena).unwrap();
        fs::write(dir.join("gen-1.tail.tmp"), b"junk").unwrap();

        // The manifest still names generation 0, whose files are intact.
        let back = LayeredExactOracle::open_layered(&dir).unwrap();
        assert_eq!(back.generation(), 0);
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            back.influence(&seeds).to_bits(),
            oracle.influence(&seeds).to_bits()
        );

        // Completing the compaction commits generation 1 and sweeps the
        // stale generation-0 files and tmp leftovers.
        compacted.save_layered(&dir).unwrap();
        let back = LayeredExactOracle::open_layered(&dir).unwrap();
        assert_eq!(back.generation(), 1);
        assert!(!gen_file(&dir, 0, "arena").exists());
        assert!(!dir.join("gen-1.tail.tmp").exists());
        assert_eq!(
            back.influence(&seeds).to_bits(),
            compacted.influence(&seeds).to_bits()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interaction_log_truncation_and_future_version_rejected() {
        let ints: Vec<Interaction> = (0..10)
            .map(|i| Interaction::from_raw(i, i + 1, i64::from(i)))
            .collect();
        let mut bytes = Vec::new();
        write_interactions(&mut bytes, &ints).unwrap();
        assert_eq!(read_interactions(&mut bytes.as_slice()).unwrap(), ints);
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 8);
        assert!(read_interactions(&mut truncated.as_slice()).is_err());
        let mut future = bytes.clone();
        future[4] = 99; // version byte
        assert!(matches!(
            read_interactions(&mut future.as_slice()),
            Err(CodecError::FutureVersion(99))
        ));
        // Unsorted logs are corruption, not silently accepted.
        let mut unsorted = ints.clone();
        unsorted.swap(0, 9);
        let mut bytes = Vec::new();
        write_interactions(&mut bytes, &unsorted).unwrap();
        assert!(matches!(
            read_interactions(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }
}
