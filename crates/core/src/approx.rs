//! The approximate one-pass IRS algorithm (paper Algorithm 3).
//!
//! Identical control flow to [`ExactIrs`](crate::ExactIrs) — both run the
//! shared [`ReversePassEngine`](crate::engine::ReversePassEngine) — but each
//! node's summary is a [`VersionedHll`] instead of an exact hash map
//! (the [`VhllStore`] backend). Memory per node drops from `O(n)` worst case
//! to an expected `O(β · log²ω)` (paper Lemma 6), and set sizes come back
//! with relative error `≈ 1.04/√β`.

use crate::engine::{ReversePassEngine, VhllStore};
use crate::obs::{metric_u64, Gauge, HeapBytes, Recorder};
use infprop_hll::{HyperLogLog, VersionedHll};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};

/// Paper default: `β = 2^9 = 512` cells — §6.2 found larger β gives only
/// modest further accuracy.
pub const DEFAULT_PRECISION: u8 = 9;

/// Approximate influence-reachability summaries: one versioned HLL per node.
///
/// # Self-cycles
///
/// Unlike [`ExactIrs`](crate::ExactIrs), a sketch cannot filter the source
/// node itself out of a merged cycle (hashed items carry no identity), so a
/// node lying on a short cycle may count itself — an overcount of at most
/// one, far below the sketch's own `≈ 1.04/√β` error. The paper's Algorithm
/// 3 has the same behaviour.
#[derive(Clone, Debug)]
pub struct ApproxIrs {
    window: Window,
    precision: u8,
    sketches: Vec<VersionedHll>,
}

impl ApproxIrs {
    /// Runs Algorithm 3 with the paper-default precision (β = 512).
    pub fn compute(net: &InteractionNetwork, window: Window) -> Self {
        Self::compute_with_precision(net, window, DEFAULT_PRECISION)
    }

    /// Runs Algorithm 3 with `β = 2^precision` cells per node, via
    /// [`ReversePassEngine`] with a [`VhllStore`] backend.
    ///
    /// Timestamp ties are handled with the same two-phase batching as the
    /// exact algorithm (see [`ExactIrs::compute`](crate::ExactIrs::compute)).
    ///
    /// # Panics
    ///
    /// Panics if `window < 1` or `precision ∉ [4, 16]`.
    pub fn compute_with_precision(net: &InteractionNetwork, window: Window, precision: u8) -> Self {
        let store = ReversePassEngine::run(
            net,
            window,
            VhllStore::with_nodes(precision, net.num_nodes()),
        );
        ApproxIrs {
            window,
            precision,
            sketches: store.into_sketches(),
        }
    }

    /// [`compute_with_precision`](Self::compute_with_precision) with full
    /// instrumentation: the engine and the [`VhllStore`] merge path report
    /// into `rec` (the `engine.*` and `vhll.*` catalogues in
    /// [`crate::obs`]), and the finished store's size is published through
    /// the `store.*` gauges.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1` or `precision ∉ [4, 16]`.
    pub fn compute_with_precision_recorded<R: Recorder>(
        net: &InteractionNetwork,
        window: Window,
        precision: u8,
        rec: &R,
    ) -> Self {
        let store = VhllStore::with_nodes_recorded(precision, net.num_nodes(), rec);
        let store = ReversePassEngine::run_recorded(net, window, store, rec);
        let irs = ApproxIrs {
            window,
            precision,
            sketches: store.into_sketches(),
        };
        if R::ENABLED {
            rec.gauge(Gauge::StoreHeapBytes, metric_u64(irs.heap_bytes()));
            rec.gauge(Gauge::StoreNodes, metric_u64(irs.num_nodes()));
            rec.gauge(Gauge::StoreEntries, metric_u64(irs.total_entries()));
        }
        irs
    }

    /// Reassembles sketch state from its parts (the persistence codec's and
    /// the streaming builder's entry point; parts must be mutually
    /// consistent).
    pub(crate) fn from_parts(window: Window, precision: u8, sketches: Vec<VersionedHll>) -> Self {
        debug_assert!(sketches.iter().all(|s| s.precision() == precision));
        ApproxIrs {
            window,
            precision,
            sketches,
        }
    }

    /// The window ω the sketches were computed for.
    #[inline]
    pub fn window(&self) -> Window {
        self.window
    }

    /// Sketch precision `k` (β = 2^k cells per node).
    #[inline]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    /// The versioned sketch of `φω(u)`.
    #[inline]
    pub fn sketch(&self, u: NodeId) -> &VersionedHll {
        &self.sketches[u.index()]
    }

    /// Estimated `|σω(u)|`.
    #[inline]
    pub fn irs_size_estimate(&self, u: NodeId) -> f64 {
        self.sketches[u.index()].estimate()
    }

    /// Collapses every node's versioned sketch into a plain HLL of per-cell
    /// maxima — the representation the influence oracle unions in `O(β)`.
    pub fn collapse(&self) -> Vec<HyperLogLog> {
        self.sketches
            .iter()
            .map(VersionedHll::to_hyperloglog)
            .collect()
    }

    /// Total version pairs across all sketches.
    pub fn total_entries(&self) -> usize {
        self.sketches.iter().map(VersionedHll::total_entries).sum()
    }

    /// Heap bytes held by all sketches (Table 4 accounting).
    pub fn heap_bytes(&self) -> usize {
        self.sketches.iter().map(VersionedHll::heap_bytes).sum()
    }

    /// Wraps the collapsed sketches in an approximate
    /// [`InfluenceOracle`](crate::InfluenceOracle).
    pub fn oracle(&self) -> crate::ApproxOracle {
        crate::ApproxOracle::new(self)
    }

    /// Freezes the sketches into a flat register arena with precomputed
    /// per-node estimates
    /// ([`FrozenApproxOracle`](crate::FrozenApproxOracle)). The collapse is
    /// the same per-cell-maxima projection as [`oracle`](Self::oracle), so
    /// every query answer is bit-identical to the live oracle.
    pub fn freeze(&self) -> crate::FrozenApproxOracle {
        crate::FrozenApproxOracle::from_vhll(self.precision, &self.sketches)
    }

    /// [`freeze`](Self::freeze), publishing the arena size to the
    /// `frozen.bytes` gauge of `rec`.
    pub fn freeze_recorded<R: crate::Recorder>(&self, rec: &R) -> crate::FrozenApproxOracle {
        let frozen = self.freeze();
        crate::frozen::record_frozen_bytes(&frozen, rec);
        frozen
    }

    /// Freezes the sketches into the base arena of a
    /// [`LayeredApproxOracle`](crate::LayeredApproxOracle), exporting the
    /// window tail of `net` as the delta seed; see
    /// [`ExactIrs::layered`](crate::ExactIrs::layered). `net` must be the
    /// network this IRS was computed from.
    pub fn layered(&self, net: &InteractionNetwork) -> crate::LayeredApproxOracle {
        let base = self.freeze();
        let frontier = net.interactions().last().map(|i| i.time);
        let tail = match frontier {
            Some(f) => crate::delta::window_tail(net.interactions(), f, self.window),
            None => Vec::new(),
        };
        crate::LayeredApproxOracle::from_parts(base, self.window, frontier, tail, Vec::new(), 0)
    }

    /// Checks the dominance-chain invariant of every sketch (register lists
    /// sorted by strictly increasing time *and* ρ, with ρ in range) — the
    /// on-demand entry point of the [`invariants`](crate::invariants)
    /// verification layer.
    pub fn validate(&self) -> Result<(), crate::InvariantViolation> {
        crate::invariants::validate_sketches(&self.sketches, None)
    }
}

impl HeapBytes for ApproxIrs {
    fn heap_bytes(&self) -> usize {
        ApproxIrs::heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIrs;

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    /// On tiny inputs with high precision, HLL linear counting is exact
    /// with overwhelming probability — the estimates must match the exact
    /// IRS sizes, except that a sketch cannot filter the source itself out
    /// of a merged cycle (a ≤ 1 overcount; here node e's channel
    /// e → b → e at ω ≥ 3).
    #[test]
    fn matches_exact_on_figure1a() {
        let net = figure1a();
        for w in [1i64, 3, 8] {
            let exact = ExactIrs::compute(&net, Window(w));
            let approx = ApproxIrs::compute_with_precision(&net, Window(w), 12);
            for u in net.node_ids() {
                let est = approx.irs_size_estimate(u);
                let truth = exact.irs_size(u) as f64;
                let slack = if u == NodeId(4) && w >= 3 { 1.0 } else { 0.0 };
                assert!(
                    est >= truth - 0.5 && est <= truth + slack + 0.5,
                    "node {u:?} ω={w}: est {est} truth {truth}"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let net = figure1a();
        let a = ApproxIrs::compute(&net, Window(3));
        let b = ApproxIrs::compute(&net, Window(3));
        for u in net.node_ids() {
            assert_eq!(a.sketch(u), b.sketch(u));
        }
    }

    #[test]
    fn sketch_invariants_hold_after_compute() {
        let net = figure1a();
        let approx = ApproxIrs::compute_with_precision(&net, Window(4), 6);
        for u in net.node_ids() {
            assert!(approx.sketch(u).check_invariants().is_ok());
        }
    }

    #[test]
    fn ties_never_chain_in_sketches() {
        let net = InteractionNetwork::from_triples([(0, 1, 5), (1, 2, 5)]);
        let approx = ApproxIrs::compute_with_precision(&net, Window(10), 12);
        assert!((approx.irs_size_estimate(NodeId(0)) - 1.0).abs() < 0.5);
        assert!((approx.irs_size_estimate(NodeId(1)) - 1.0).abs() < 0.5);
    }

    #[test]
    fn larger_windows_never_shrink_estimates_much() {
        // IRS is monotone in ω; estimates may wobble within error, but on a
        // tiny graph with high precision they are exact.
        let net = figure1a();
        let w1 = ApproxIrs::compute_with_precision(&net, Window(1), 12);
        let w8 = ApproxIrs::compute_with_precision(&net, Window(8), 12);
        for u in net.node_ids() {
            assert!(w8.irs_size_estimate(u) + 1e-9 >= w1.irs_size_estimate(u));
        }
    }

    #[test]
    fn collapse_preserves_estimates() {
        let net = figure1a();
        let approx = ApproxIrs::compute(&net, Window(3));
        let collapsed = approx.collapse();
        for u in net.node_ids() {
            assert_eq!(collapsed[u.index()].estimate(), approx.irs_size_estimate(u));
        }
    }

    #[test]
    fn accuracy_improves_with_precision_on_bulk_graph() {
        // A star fan-out: node 0 sends to 1..=400 at increasing times, so
        // σω(0) for a large ω is everything.
        let net = InteractionNetwork::from_triples((1u32..=400).map(|v| (0u32, v, i64::from(v))));
        let truth = 400.0;
        let mut errs = Vec::new();
        for precision in [4u8, 7, 10] {
            let approx = ApproxIrs::compute_with_precision(&net, Window::unbounded(), precision);
            let est = approx.irs_size_estimate(NodeId(0));
            errs.push((est - truth).abs() / truth);
        }
        // Highest precision must beat lowest precision.
        assert!(
            errs[2] <= errs[0] + 1e-9,
            "errors did not improve: {errs:?}"
        );
        assert!(errs[2] < 0.10, "k=10 error too large: {}", errs[2]);
    }

    #[test]
    fn heap_accounting_and_entry_counts() {
        let net = figure1a();
        let approx = ApproxIrs::compute(&net, Window(3));
        assert!(approx.heap_bytes() > 0);
        assert!(approx.total_entries() >= 1);
        assert_eq!(approx.precision(), DEFAULT_PRECISION);
        assert_eq!(approx.num_nodes(), 6);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = ApproxIrs::compute(&figure1a(), Window(0));
    }
}
