// xtask-allow: forbid-unsafe (the literal forbid below is conditional: builds without the opt-in `simd-avx2`/`mmap` features keep `#![forbid(unsafe_code)]`; with either, unsafe is denied crate-wide except the allow-scoped AVX2 kernel and mmap arena modules)
//! The paper's primary contribution: influence-reachability sets (IRS) over
//! time-constrained information channels, computed in **one pass** over an
//! interaction network — exactly or with versioned-HyperLogLog sketches —
//! plus the influence oracle and greedy influence maximization built on top.
//!
//! # The algorithms
//!
//! Both algorithms scan the interactions in **reverse chronological order**.
//! Lemma 1 of the paper shows why: prepending the earliest interaction
//! `(u, v, t)` can only change the summary of `u`, so each interaction costs
//! one `Add` (record the direct channel `u → v`) and one `Merge` (inherit
//! `v`'s reachable set, filtered to channels that still fit in the window
//! `ω` when extended back to time `t`).
//!
//! * [`ExactIrs`] (paper Algorithm 2) keeps, per node, the full summary
//!   `φω(u) = {(v, λ(u, v))}` — every reachable node with the earliest end
//!   time of an admissible channel. `O(mn)` time, `O(n²)` space worst case.
//! * [`ApproxIrs`] (paper Algorithm 3) replaces each summary with a
//!   [`VersionedHll`](infprop_hll::VersionedHll): expected
//!   `O(m·β·log²ω)` time and `O(n·β·log²ω)` space, at the cost of a
//!   `≈ 1.04/√β` relative error on set sizes.
//!
//! # Applications
//!
//! * [`InfluenceOracle`] — given any seed set `S`, estimate
//!   `|⋃_{u∈S} σω(u)|` (paper §4.1). Exact summaries use dense bitset
//!   unions; sketches use `O(β)` register-max unions. Batch queries
//!   ([`InfluenceOracle::influence_many`]) fan out over the deterministic
//!   parallel layer in [`par`].
//! * [`greedy_top_k`] — the lazy (CELF-style) greedy maximizer; its output
//!   matches the paper's Algorithm 4 (implemented verbatim as
//!   [`greedy_top_k_paper`]) because the influence function is monotone and
//!   submodular (paper Lemma 8).
//!
//! # One engine, pluggable backends
//!
//! Both algorithms are the *same* reverse-chronological driver parameterized
//! only by the summary representation, and the code is shaped accordingly:
//! the [`engine`] module owns the single [`ReversePassEngine`] (reverse
//! scan, two-phase tie batching, streaming frontier contract) and the
//! [`SummaryStore`] trait it drives, with [`ExactStore`] and [`VhllStore`]
//! as the two backends. [`ExactIrs`], [`ApproxIrs`], [`ExactIrsStream`] and
//! [`ApproxIrsStream`] are thin wrappers over that engine, so a future
//! sharded or parallel store drops in without touching callers.
//!
//! # Timestamp ties
//!
//! The paper assumes all-distinct timestamps. This implementation also
//! accepts ties and keeps the channel semantics strict (`t1 < t2 < …`):
//! interactions sharing a timestamp are processed as a two-phase batch so
//! that no channel ever chains two equal-time hops. See
//! [`ExactIrs::compute`] and [`engine`] for details.
//!
//! # Example
//!
//! ```
//! use infprop_core::{ExactIrs, greedy_top_k};
//! use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
//!
//! // Figure 2 of the paper: two channels from c (=2) to f (=5).
//! let net = InteractionNetwork::from_triples([
//!     (0, 1, 1), (0, 3, 2), (3, 2, 3), (4, 2, 6), (1, 2, 4),
//!     (2, 4, 3), (2, 5, 5), (2, 5, 8),
//! ]);
//! let irs = ExactIrs::compute(&net, Window(3));
//! // φ3(c) = {(f, 5), (e, 3)}  (paper Example 1)
//! assert_eq!(irs.irs_size(NodeId(2)), 2);
//!
//! let oracle = irs.oracle();
//! let top = greedy_top_k(&oracle, 2);
//! assert_eq!(top.len(), 2);
//! ```

#![warn(missing_docs)]
// Default builds stay `forbid(unsafe_code)`-clean. The opt-in `simd-avx2`
// and `mmap` features downgrade the crate-wide lint to `deny` so their one
// `#[allow(unsafe_code)]` module each — the AVX2 dispatch in [`kernel`] and
// the mapping wrapper in `arena` — can exist; every other module is still
// rejected at compile time if it tries.
#![cfg_attr(not(any(feature = "simd-avx2", feature = "mmap")), forbid(unsafe_code))]
#![cfg_attr(any(feature = "simd-avx2", feature = "mmap"), deny(unsafe_code))]

mod approx;
mod arena;
mod brute;
mod channel;
mod delta;
pub mod engine;
mod exact;
mod frozen;
pub mod invariants;
pub mod kernel;
mod maximize;
pub mod obs;
mod oracle;
pub mod par;
mod persist;
mod profile;
pub mod serve;
mod stream;
pub mod trace;

/// The deterministic fast hash map used on every IRS hot path (an Fx-style
/// integer hasher instead of SipHash; HashDoS is not a threat model for an
/// offline analytics library). All workspace code paths that key maps by
/// [`NodeId`](infprop_temporal_graph::NodeId) or other small integers go
/// through this single alias, so swapping the hasher is a one-line change.
pub type FastMap<K, V> = infprop_hll::hash::FastHashMap<K, V>;

/// Set counterpart of [`FastMap`].
pub type FastSet<K> = infprop_hll::hash::FastHashSet<K>;

pub use approx::{ApproxIrs, DEFAULT_PRECISION};
pub use arena::{ArenaBytes, ARENA_ALIGN};
pub use brute::{brute_force_irs, brute_force_irs_all};
pub use channel::{channels_from, find_channel, Channel};
pub use delta::{DeltaOverlay, LayeredApproxOracle, LayeredExactOracle, StaleAppend};
pub use engine::{
    ExactStore, ExactSummary, OutOfOrder, ReversePassEngine, SummaryStore, VhllStore,
};
pub use exact::ExactIrs;
pub use frozen::{EntriesSlice, FrozenApproxOracle, FrozenExactOracle};
pub use invariants::{validate_all, InvariantViolation};
pub use maximize::{
    greedy_top_k, greedy_top_k_paper, greedy_top_k_paper_threads, greedy_top_k_recorded,
    greedy_top_k_threads, greedy_top_k_traced, Selection,
};
pub use obs::{HeapBytes, MetricsRecorder, MetricsSnapshot, NoopRecorder, Recorder};
pub use oracle::{ApproxOracle, ExactOracle, InfluenceOracle, NodeBitset};
pub use persist::{
    LayeredKind, LayeredManifest, FROZEN_APPROX_LAYOUT_VERSION, FROZEN_EXACT_LAYOUT_VERSION,
    MANIFEST_FILE,
};
pub use profile::{ContactDirection, SlidingContacts};
pub use stream::{ApproxIrsStream, ExactIrsStream};
pub use trace::{
    attribution, trace_to_json, validate_trace_json, FlightRecorder, LaneTracer, NoopTracer,
    PhaseStat, RingTracer, SpanId, TraceEvent, TraceId, TraceRecord, Tracer,
};
