//! Information-channel *witness* extraction.
//!
//! The IRS algorithms answer "can `u` reach `v` within ω?"; this module
//! answers "**show me the channel**": an explicit sequence of interactions
//! `(u, n1, t1), (n1, n2, t2), …, (nk, v, tk)` with strictly increasing
//! timestamps and duration `tk − t1 + 1 ≤ ω` (paper Definition 1). Among
//! all admissible channels it returns one with the **earliest end time**
//! (`tk = λ(u, v)`), matching the summaries' λ entries — the natural
//! "fastest possible leak" witness for auditing or visualization.
//!
//! Extraction is an on-demand forward scan with predecessor tracking
//! (`O(d⁺(u) · m)` worst case — fine for interactive queries; bulk
//! reachability should use [`ExactIrs`](crate::ExactIrs)).

use infprop_temporal_graph::{Interaction, InteractionNetwork, NodeId, Window};

/// An explicit information channel: a time-respecting interaction path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Channel {
    /// The interactions of the path, in hop order.
    pub hops: Vec<Interaction>,
}

impl Channel {
    /// Channel duration `tk − t1 + 1` (paper Definition 1).
    ///
    /// # Panics
    ///
    /// Panics on an empty hop sequence ([`find_channel`] never returns one;
    /// hand-built empty channels are a caller bug — see [`is_valid`](Self::is_valid)).
    pub fn duration(&self) -> i64 {
        // xtask-allow: no-panic (documented panic: channels are non-empty by construction)
        let first = self.hops.first().expect("channel has at least one hop"); // xtask-allow: no-panic (same invariant)
        let last = self.hops.last().expect("channel has at least one hop");
        last.time.delta(first.time) + 1
    }

    /// Channel end time `tk`.
    ///
    /// # Panics
    ///
    /// Panics on an empty hop sequence (see [`duration`](Self::duration)).
    pub fn end_time(&self) -> i64 {
        self.hops
            .last()
            .expect("channel has at least one hop") // xtask-allow: no-panic (documented panic: non-empty by construction)
            .time
            .get()
    }

    /// The source node.
    ///
    /// # Panics
    ///
    /// Panics on an empty hop sequence (see [`duration`](Self::duration)).
    pub fn source(&self) -> NodeId {
        // xtask-allow: no-panic (documented panic: non-empty by construction)
        self.hops.first().expect("channel has at least one hop").src
    }

    /// The destination node.
    ///
    /// # Panics
    ///
    /// Panics on an empty hop sequence (see [`duration`](Self::duration)).
    pub fn destination(&self) -> NodeId {
        // xtask-allow: no-panic (documented panic: non-empty by construction)
        self.hops.last().expect("channel has at least one hop").dst
    }

    /// Checks Definition 1 on this hop sequence: consecutive hops chain
    /// (`dst_i == src_{i+1}`) with strictly increasing timestamps, and the
    /// duration fits `window`.
    pub fn is_valid(&self, window: Window) -> bool {
        if self.hops.is_empty() {
            return false;
        }
        let chained = self
            .hops
            .windows(2)
            .all(|w| w[0].dst == w[1].src && w[0].time < w[1].time);
        chained && window.admits(self.hops[0].time, self.hops[self.hops.len() - 1].time)
    }
}

/// Finds an admissible information channel from `u` to `v` with the
/// earliest possible end time (`λ(u, v)`), or `None` if no channel of
/// duration ≤ ω exists.
///
/// Matches [`ExactIrs::lambda`](crate::ExactIrs::lambda): the returned
/// channel's end time equals the λ entry for `(u, v)` whenever one exists.
/// Like the IRS, a trivial empty channel does not count: `u = v` only
/// succeeds through a genuine cycle.
pub fn find_channel(
    net: &InteractionNetwork,
    u: NodeId,
    v: NodeId,
    window: Window,
) -> Option<Channel> {
    window.assert_valid();
    let n = net.num_nodes();
    if u.index() >= n || v.index() >= n {
        return None;
    }
    let interactions = net.interactions();
    let start_times: Vec<i64> = interactions
        .iter()
        .filter(|i| i.src == u)
        .map(|i| i.time.get())
        .collect();

    let mut best: Option<(i64, Vec<usize>)> = None; // (end time, hop indices)
    let mut informed_at = vec![i64::MAX; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];

    for &t0 in &start_times {
        // A start later than an already-found end cannot beat it.
        if let Some((end, _)) = &best {
            if t0 > *end {
                continue;
            }
        }
        let deadline = t0.saturating_add(window.get() - 1);
        informed_at.fill(i64::MAX);
        pred.fill(None);
        informed_at[u.index()] = t0 - 1;
        let from = interactions.partition_point(|i| i.time.get() < t0);
        for (offset, i) in interactions[from..].iter().enumerate() {
            let t = i.time.get();
            if t > deadline {
                break;
            }
            if informed_at[i.src.index()] >= t {
                continue; // carrier not informed strictly before this hop
            }
            // Arrival at the target along this very interaction. Handled
            // before relaxation so that cycles back to the source (whose
            // `informed_at` never improves) are still witnessed.
            if i.dst == v && best.as_ref().is_none_or(|(b, _)| t < *b) {
                let mut hops = vec![from + offset];
                let mut cur = i.src;
                while cur != u {
                    // A node with `informed_at < t` got that value through the
                    // relaxation below, which always records a predecessor.
                    // xtask-allow: no-panic (informed non-source nodes always carry a predecessor)
                    let idx = pred[cur.index()].expect("informed node has a predecessor");
                    hops.push(idx);
                    cur = interactions[idx].src;
                }
                hops.reverse();
                best = Some((t, hops));
            }
            if t < informed_at[i.dst.index()] {
                informed_at[i.dst.index()] = t;
                pred[i.dst.index()] = Some(from + offset);
            }
        }
    }

    best.map(|(_, idxs)| Channel {
        hops: idxs.into_iter().map(|i| interactions[i]).collect(),
    })
}

/// λ(u, ·) for every reachable node, with witnesses — the explicit version
/// of one node's IRS summary. Returns `(v, channel)` pairs sorted by `v`.
pub fn channels_from(
    net: &InteractionNetwork,
    u: NodeId,
    window: Window,
) -> Vec<(NodeId, Channel)> {
    let mut out: Vec<(NodeId, Channel)> = net
        .node_ids()
        .filter_map(|v| find_channel(net, u, v, window).map(|c| (v, c)))
        .collect();
    out.sort_by_key(|&(v, _)| v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIrs;
    use infprop_temporal_graph::Timestamp;

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    #[test]
    fn witness_matches_lambda_on_figure1a() {
        let net = figure1a();
        for w in 1..=9 {
            let irs = ExactIrs::compute(&net, Window(w));
            for u in net.node_ids() {
                for v in net.node_ids() {
                    let witness = find_channel(&net, u, v, Window(w));
                    if u == v {
                        // The IRS excludes self-entries by design, but a
                        // genuine cycle channel is a valid witness.
                        if let Some(c) = witness {
                            assert!(c.is_valid(Window(w)));
                            assert_eq!(c.source(), u);
                            assert_eq!(c.destination(), u);
                        }
                        continue;
                    }
                    match irs.lambda(u, v) {
                        Some(lambda) => {
                            let c = witness
                                .unwrap_or_else(|| panic!("missing witness {u:?}->{v:?} ω={w}"));
                            assert!(c.is_valid(Window(w)), "invalid witness {c:?}");
                            assert_eq!(c.source(), u);
                            assert_eq!(c.destination(), v);
                            assert_eq!(Timestamp(c.end_time()), lambda, "{u:?}->{v:?} ω={w}");
                        }
                        None => assert!(witness.is_none(), "spurious witness {u:?}->{v:?} ω={w}"),
                    }
                }
            }
        }
    }

    #[test]
    fn direct_edge_is_single_hop() {
        let net = figure1a();
        let c = find_channel(&net, NodeId(0), NodeId(3), Window(5)).unwrap();
        assert_eq!(c.hops.len(), 1);
        assert_eq!(c.duration(), 1);
        assert_eq!(c.end_time(), 1);
    }

    #[test]
    fn multi_hop_witness_is_time_respecting() {
        // At ω = 3 the earliest-ending channel a -> e is (a,d,1),(d,e,3).
        let net = figure1a();
        let c = find_channel(&net, NodeId(0), NodeId(4), Window(3)).unwrap();
        assert_eq!(c.hops.len(), 2);
        assert_eq!(c.duration(), 3);
        assert_eq!(c.end_time(), 3);
        assert!(c.is_valid(Window(3)));
        // At ω = 2 only the later (a,b,5),(b,e,6) channel fits (duration 2).
        let c2 = find_channel(&net, NodeId(0), NodeId(4), Window(2)).unwrap();
        assert_eq!(c2.duration(), 2);
        assert_eq!(c2.end_time(), 6);
        // At ω = 1 there is no channel a -> e at all.
        assert!(find_channel(&net, NodeId(0), NodeId(4), Window(1)).is_none());
    }

    #[test]
    fn no_channel_to_f_from_a() {
        // The paper's intro claim.
        let net = figure1a();
        assert!(find_channel(&net, NodeId(0), NodeId(5), Window::unbounded()).is_none());
    }

    #[test]
    fn cycle_witness_back_to_source() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 0, 2)]);
        let c = find_channel(&net, NodeId(0), NodeId(0), Window(5)).unwrap();
        assert_eq!(c.hops.len(), 2);
        assert_eq!(c.source(), NodeId(0));
        assert_eq!(c.destination(), NodeId(0));
        assert!(c.is_valid(Window(5)));
    }

    #[test]
    fn channels_from_lists_all_reachable() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let all = channels_from(&net, NodeId(0), Window(3));
        // IRS excludes self; channels_from may include a cycle witness.
        let nodes: Vec<NodeId> = all
            .iter()
            .map(|(v, _)| *v)
            .filter(|&v| v != NodeId(0))
            .collect();
        assert_eq!(nodes, irs.irs_sorted(NodeId(0)));
    }

    #[test]
    fn out_of_range_nodes_yield_none() {
        let net = figure1a();
        assert!(find_channel(&net, NodeId(99), NodeId(0), Window(3)).is_none());
        assert!(find_channel(&net, NodeId(0), NodeId(99), Window(3)).is_none());
    }

    #[test]
    fn equal_timestamps_never_chain_in_witnesses() {
        let net = InteractionNetwork::from_triples([(0, 1, 5), (1, 2, 5)]);
        assert!(find_channel(&net, NodeId(0), NodeId(2), Window(10)).is_none());
        assert!(find_channel(&net, NodeId(0), NodeId(1), Window(10)).is_some());
    }
}
