//! Greedy influence maximization (paper §4.2, Algorithm 4).
//!
//! Maximizing `Inf(S) = |⋃_{u∈S} σω(u)|` over `|S| = k` is NP-hard (paper
//! Lemma 7, by reduction from maximum coverage), but `Inf` is monotone and
//! submodular (Lemma 8), so greedy selection achieves the classic
//! `1 − 1/e` approximation.
//!
//! Two implementations with identical output:
//!
//! * [`greedy_top_k`] — CELF-style lazy greedy: a max-heap of stale marginal
//!   gains; submodularity guarantees a stale gain is an upper bound, so the
//!   heap top whose gain was recomputed this round is the true argmax. This
//!   is the production path.
//! * [`greedy_top_k_paper`] — Algorithm 4 verbatim: nodes sorted by
//!   individual IRS size descending; each round scans the list, keeps the
//!   best recomputed gain and stops early once the running best exceeds the
//!   next node's individual size (an upper bound on its gain). Kept for
//!   fidelity and as a cross-check in tests.

use crate::obs::{metric_u64, Counter, NoopRecorder, Recorder, Span};
use crate::oracle::InfluenceOracle;
use crate::trace::{NoopTracer, SpanId, TraceEvent, TraceId, Tracer};
use infprop_temporal_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One greedy pick: the chosen node, its marginal gain at selection time,
/// and the cumulative influence after adding it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Selection {
    /// The selected seed node.
    pub node: NodeId,
    /// Marginal influence gained by adding this node.
    pub marginal: f64,
    /// `Inf(S)` after this node joined `S`.
    pub cumulative: f64,
}

/// Heap entry ordered by (gain, individual size, node id) — the same
/// tie-breaking as the paper's sorted-scan greedy (which prefers the node
/// appearing earliest in the individual-size ordering), so both algorithms
/// return identical selections.
struct Candidate {
    gain: f64,
    /// `|σω(node)|`, fixed at construction; only used to break gain ties.
    individual: f64,
    node: NodeId,
    /// Selection round in which `gain` was last recomputed.
    round: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| self.individual.total_cmp(&other.individual))
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Lazy (CELF) greedy top-k seed selection over any [`InfluenceOracle`].
///
/// Returns at most `k` selections (fewer if the network has fewer nodes or
/// every remaining gain is zero — adding dead nodes is pointless). Output
/// order is selection order; `cumulative` is non-decreasing.
pub fn greedy_top_k<O: InfluenceOracle>(oracle: &O, k: usize) -> Vec<Selection> {
    let individuals: Vec<f64> = (0..oracle.num_nodes())
        .map(|i| oracle.individual(NodeId::from_index(i)))
        .collect();
    greedy_top_k_with_individuals(oracle, k, &individuals)
}

/// [`greedy_top_k`] with the first-round `individual()` sweep — the
/// dominant cost on large universes, one `O(2^p)` sketch estimate per node
/// — fanned out over up to `threads` scoped workers. Selections are
/// byte-identical to the serial path at any thread count.
pub fn greedy_top_k_threads<O>(oracle: &O, k: usize, threads: usize) -> Vec<Selection>
where
    O: InfluenceOracle + Sync,
{
    let individuals = oracle.individuals(threads);
    greedy_top_k_with_individuals(oracle, k, &individuals)
}

/// [`greedy_top_k_threads`] with full instrumentation: the whole selection
/// runs inside the `greedy.select` span, the individual-influence sweep
/// reports per-chunk timings through [`InfluenceOracle::individuals_recorded`],
/// and the CELF loop counts `greedy.rounds` (seeds picked) and
/// `greedy.lazy_refreshes` (stale gains recomputed). Selections are
/// byte-identical to [`greedy_top_k_threads`] at any thread count.
pub fn greedy_top_k_recorded<O, R>(oracle: &O, k: usize, threads: usize, rec: &R) -> Vec<Selection>
where
    O: InfluenceOracle + Sync,
    R: Recorder,
{
    greedy_top_k_traced(oracle, k, threads, rec, NoopTracer)
}

/// [`greedy_top_k_recorded`] with causal tracing: the whole selection is
/// one `greedy.selection` span (its own trace; payload: seeds picked), and
/// every fresh pick fires a `greedy.round` instant carrying the round
/// number. Selections stay byte-identical with any tracer.
pub fn greedy_top_k_traced<O, R, T>(
    oracle: &O,
    k: usize,
    threads: usize,
    rec: &R,
    tracer: T,
) -> Vec<Selection>
where
    O: InfluenceOracle + Sync,
    R: Recorder,
    T: Tracer,
{
    let trace = TraceId(if T::ENABLED {
        tracer.alloc_traces(1)
    } else {
        0
    });
    let sp = tracer.begin(trace, SpanId::NONE, TraceEvent::GreedySelection);
    let t0 = rec.span_start();
    let individuals = oracle.individuals_recorded(threads, rec);
    let picks =
        greedy_top_k_with_individuals_traced(oracle, k, &individuals, rec, tracer, trace, sp);
    rec.span_end(Span::GreedySelect, t0);
    tracer.end(sp, TraceEvent::GreedySelection, metric_u64(picks.len()));
    picks
}

/// The CELF selection loop proper, seeded with precomputed individual
/// influences (`individuals[i] = |σω(node i)|`).
fn greedy_top_k_with_individuals<O: InfluenceOracle>(
    oracle: &O,
    k: usize,
    individuals: &[f64],
) -> Vec<Selection> {
    greedy_top_k_with_individuals_recorded(oracle, k, individuals, &NoopRecorder)
}

/// The CELF loop with round/refresh counting — the single implementation
/// both the plain and recorded entry points monomorphize from.
fn greedy_top_k_with_individuals_recorded<O: InfluenceOracle, R: Recorder>(
    oracle: &O,
    k: usize,
    individuals: &[f64],
    rec: &R,
) -> Vec<Selection> {
    greedy_top_k_with_individuals_traced(
        oracle,
        k,
        individuals,
        rec,
        NoopTracer,
        TraceId::NONE,
        SpanId::NONE,
    )
}

/// The CELF loop with round/refresh counting *and* per-pick `greedy.round`
/// instants under the caller's `greedy.selection` span — the single
/// implementation every greedy entry point monomorphizes from.
fn greedy_top_k_with_individuals_traced<O: InfluenceOracle, R: Recorder, T: Tracer>(
    oracle: &O,
    k: usize,
    individuals: &[f64],
    rec: &R,
    tracer: T,
    trace: TraceId,
    parent: SpanId,
) -> Vec<Selection> {
    let n = oracle.num_nodes();
    let mut heap: BinaryHeap<Candidate> = individuals
        .iter()
        .enumerate()
        .map(|(i, &individual)| Candidate {
            gain: individual,
            individual,
            node: NodeId::from_index(i),
            round: 0,
        })
        .collect();

    let mut covered = oracle.empty_union();
    let mut picks = Vec::with_capacity(k.min(n));
    let mut round = 0usize;

    while picks.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            // Fresh gain: this is the true argmax (stale gains above it in
            // the heap would have been popped first and refreshed).
            if top.gain <= 0.0 {
                break;
            }
            oracle.absorb(&mut covered, top.node);
            let cumulative = oracle.union_size(&covered);
            picks.push(Selection {
                node: top.node,
                marginal: top.gain,
                cumulative,
            });
            round += 1;
            tracer.instant(trace, parent, TraceEvent::GreedyRound, metric_u64(round));
            rec.add(Counter::GreedyRounds, 1);
        } else {
            let gain = oracle.marginal_gain(&covered, top.node);
            heap.push(Candidate {
                gain,
                individual: top.individual,
                node: top.node,
                round,
            });
            rec.add(Counter::GreedyLazyRefreshes, 1);
        }
    }
    picks
}

/// Algorithm 4 of the paper, verbatim: sorted-scan greedy with the
/// `gain > |σ(u)|` early-exit bound.
pub fn greedy_top_k_paper<O: InfluenceOracle>(oracle: &O, k: usize) -> Vec<Selection> {
    let individuals: Vec<f64> = (0..oracle.num_nodes())
        .map(|i| oracle.individual(NodeId::from_index(i)))
        .collect();
    greedy_top_k_paper_with_individuals(oracle, k, &individuals)
}

/// [`greedy_top_k_paper`] with the individual-influence sweep fanned out
/// over up to `threads` scoped workers; selections are byte-identical to
/// the serial path at any thread count.
pub fn greedy_top_k_paper_threads<O>(oracle: &O, k: usize, threads: usize) -> Vec<Selection>
where
    O: InfluenceOracle + Sync,
{
    let individuals = oracle.individuals(threads);
    greedy_top_k_paper_with_individuals(oracle, k, &individuals)
}

/// Algorithm 4's sorted scan, seeded with precomputed individual
/// influences. Computing them once up front (instead of calling
/// `oracle.individual` inside the sort comparator *and* the per-round
/// early-exit test, an `O(2^p)` sketch estimate each time on the approx
/// oracle) is what makes each selection round `O(n)` oracle probes.
fn greedy_top_k_paper_with_individuals<O: InfluenceOracle>(
    oracle: &O,
    k: usize,
    individuals: &[f64],
) -> Vec<Selection> {
    let n = oracle.num_nodes();
    // "Sort u ∈ V descending with respect to |σu|" — node id breaks ties for
    // determinism.
    let mut order: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    order.sort_by(|&a, &b| {
        individuals[b.index()]
            .total_cmp(&individuals[a.index()])
            .then(a.cmp(&b))
    });

    let mut covered = oracle.empty_union();
    let mut selected: Vec<Selection> = Vec::with_capacity(k.min(n));
    let mut in_seed = vec![false; n];

    while selected.len() < k {
        let mut gain = 0.0f64;
        let mut best: Option<NodeId> = None;
        for &u in &order {
            if in_seed[u.index()] {
                continue;
            }
            // Early exit: individual sizes bound marginal gains, and the
            // list is sorted by individual size.
            if gain > individuals[u.index()] {
                break;
            }
            let g = oracle.marginal_gain(&covered, u);
            if g > gain {
                gain = g;
                best = Some(u);
            }
        }
        let Some(u) = best else { break };
        in_seed[u.index()] = true;
        oracle.absorb(&mut covered, u);
        selected.push(Selection {
            node: u,
            marginal: gain,
            cumulative: oracle.union_size(&covered),
        });
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIrs;
    use crate::oracle::InfluenceOracle;
    use infprop_temporal_graph::{InteractionNetwork, Window};

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    #[test]
    fn first_pick_is_max_individual() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let oracle = irs.oracle();
        let picks = greedy_top_k(&oracle, 1);
        assert_eq!(picks.len(), 1);
        // σ3(a) = 4 is the largest individual IRS (Example 2).
        assert_eq!(picks[0].node, NodeId(0));
        assert_eq!(picks[0].marginal, 4.0);
        assert_eq!(picks[0].cumulative, 4.0);
    }

    #[test]
    fn lazy_and_paper_greedy_agree() {
        let net = figure1a();
        for w in [1i64, 3, 8] {
            let irs = ExactIrs::compute(&net, Window(w));
            let oracle = irs.oracle();
            for k in 1..=4 {
                let lazy = greedy_top_k(&oracle, k);
                let paper = greedy_top_k_paper(&oracle, k);
                assert_eq!(lazy, paper, "ω={w} k={k}");
            }
        }
    }

    #[test]
    fn cumulative_is_nondecreasing_and_consistent() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let oracle = irs.oracle();
        let picks = greedy_top_k(&oracle, 6);
        for w in picks.windows(2) {
            assert!(w[1].cumulative >= w[0].cumulative);
            assert!(
                w[1].marginal <= w[0].marginal + 1e-9,
                "greedy gains decrease"
            );
        }
        let seeds: Vec<NodeId> = picks.iter().map(|s| s.node).collect();
        let total = oracle.influence(&seeds);
        assert_eq!(total, picks.last().unwrap().cumulative);
    }

    #[test]
    fn stops_when_gains_hit_zero() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let oracle = irs.oracle();
        // Only a, b, d, e have outgoing channels; c and f are dead.
        let picks = greedy_top_k(&oracle, 6);
        assert!(picks.len() < 6);
        assert!(picks.iter().all(|s| s.marginal > 0.0));
    }

    #[test]
    fn no_duplicate_selections() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(8));
        let oracle = irs.oracle();
        let picks = greedy_top_k(&oracle, 6);
        let mut nodes: Vec<NodeId> = picks.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), picks.len());
    }

    /// Greedy must match brute-force optimum for k=1 and stay within
    /// (1 − 1/e) of the exhaustive optimum for k=2 on this small graph.
    #[test]
    fn greedy_vs_exhaustive_optimum() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let oracle = irs.oracle();
        let n = oracle.num_nodes();

        let mut best1 = 0.0f64;
        for i in 0..n {
            best1 = best1.max(oracle.influence(&[NodeId::from_index(i)]));
        }
        let g1 = greedy_top_k(&oracle, 1)[0].cumulative;
        assert_eq!(g1, best1);

        let mut best2 = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                best2 =
                    best2.max(oracle.influence(&[NodeId::from_index(i), NodeId::from_index(j)]));
            }
        }
        let g2 = greedy_top_k(&oracle, 2).last().unwrap().cumulative;
        assert!(g2 >= (1.0 - 1.0 / std::f64::consts::E) * best2);
    }

    #[test]
    fn k_zero_returns_empty() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let oracle = irs.oracle();
        assert!(greedy_top_k(&oracle, 0).is_empty());
        assert!(greedy_top_k_paper(&oracle, 0).is_empty());
    }

    #[test]
    fn approx_oracle_greedy_runs() {
        let net = figure1a();
        let approx = crate::ApproxIrs::compute_with_precision(&net, Window(3), 12);
        let oracle = approx.oracle();
        let picks = greedy_top_k(&oracle, 2);
        assert_eq!(picks.len(), 2);
        // High-precision sketch on a tiny graph: same first pick as exact.
        assert_eq!(picks[0].node, NodeId(0));
    }

    #[test]
    fn threaded_greedy_matches_serial_at_any_thread_count() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let approx = crate::ApproxIrs::compute(&net, Window(3));
        let eo = irs.oracle();
        let ao = approx.oracle();
        for k in [1, 3, 6] {
            let lazy = greedy_top_k(&eo, k);
            let paper = greedy_top_k_paper(&eo, k);
            let a_lazy = greedy_top_k(&ao, k);
            for threads in [1, 2, 8] {
                assert_eq!(greedy_top_k_threads(&eo, k, threads), lazy, "k={k}");
                assert_eq!(greedy_top_k_paper_threads(&eo, k, threads), paper, "k={k}");
                assert_eq!(greedy_top_k_threads(&ao, k, threads), a_lazy, "k={k}");
            }
        }
    }
}
