//! Brute-force temporal reachability — the correctness reference.
//!
//! This is the naive *forward* computation the paper's Lemma 1 argues
//! against: for every node and every possible channel start time, scan the
//! interaction list chronologically and propagate earliest-arrival times.
//! `O(d⁺(u) · m)` per node — hopeless at scale, but an unimpeachable oracle
//! for testing the one-pass algorithms and the baseline for the
//! `reverse_vs_forward` ablation bench.

use crate::FastSet;
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};

/// Computes `σω(u)` by exhaustive forward temporal BFS.
///
/// A node `v ≠ u` is in the result iff there is a strictly time-increasing
/// path from `u` to it whose first hop happens at time `t0` and whose last
/// hop happens at most at `t0 + ω − 1`. The source itself is never included
/// (a node does not influence itself), matching [`ExactIrs`](crate::ExactIrs).
pub fn brute_force_irs(net: &InteractionNetwork, u: NodeId, window: Window) -> FastSet<NodeId> {
    window.assert_valid();
    let n = net.num_nodes();
    let mut result: FastSet<NodeId> = FastSet::default();
    // Candidate start times: every out-interaction of u. (A channel's first
    // hop is an out-interaction of u at the channel's start time.)
    let start_times: Vec<i64> = net
        .iter()
        .filter(|i| i.src == u)
        .map(|i| i.time.get())
        .collect();
    // Earliest time each node becomes "informed" in the current window run;
    // i64::MAX means unreached.
    let mut informed_at = vec![i64::MAX; n];
    for &t0 in &start_times {
        let deadline = t0.saturating_add(window.get() - 1);
        informed_at.fill(i64::MAX);
        // u knows the message "just before" t0, so its hop at t0 qualifies.
        informed_at[u.index()] = t0 - 1;
        for i in net.iter() {
            let t = i.time.get();
            if t < t0 {
                continue;
            }
            if t > deadline {
                break;
            }
            // Strict increase: the carrier must have been informed *before*
            // this interaction (equal timestamps never chain).
            if informed_at[i.src.index()] < t && t < informed_at[i.dst.index()] {
                informed_at[i.dst.index()] = t;
                if i.dst != u {
                    result.insert(i.dst);
                }
            }
        }
    }
    result
}

/// [`brute_force_irs`] for every node; returns per-node reachability sets.
pub fn brute_force_irs_all(net: &InteractionNetwork, window: Window) -> Vec<FastSet<NodeId>> {
    net.node_ids()
        .map(|u| brute_force_irs(net, u, window))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIrs;

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    #[test]
    fn brute_matches_exact_on_figure1a_all_windows() {
        let net = figure1a();
        for w in 1..=9 {
            let exact = ExactIrs::compute(&net, Window(w));
            for u in net.node_ids() {
                let mut brute: Vec<NodeId> =
                    brute_force_irs(&net, u, Window(w)).into_iter().collect();
                brute.sort_unstable();
                assert_eq!(exact.irs_sorted(u), brute, "node {u:?} ω={w}");
            }
        }
    }

    #[test]
    fn brute_respects_window() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 10)]);
        assert!(!brute_force_irs(&net, NodeId(0), Window(9)).contains(&NodeId(2)));
        assert!(brute_force_irs(&net, NodeId(0), Window(10)).contains(&NodeId(2)));
    }

    #[test]
    fn brute_never_includes_source() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 0, 2)]);
        assert!(!brute_force_irs(&net, NodeId(0), Window(5)).contains(&NodeId(0)));
        assert!(brute_force_irs(&net, NodeId(0), Window(5)).contains(&NodeId(1)));
        assert!(!brute_force_irs(&net, NodeId(1), Window(5)).contains(&NodeId(1)));
    }

    #[test]
    fn brute_all_has_one_set_per_node() {
        let net = figure1a();
        let all = brute_force_irs_all(&net, Window(3));
        assert_eq!(all.len(), net.num_nodes());
        assert!(all[2].is_empty()); // c has no outgoing interactions
    }

    #[test]
    fn equal_timestamps_do_not_chain() {
        let net = InteractionNetwork::from_triples([(0, 1, 5), (1, 2, 5)]);
        let r = brute_force_irs(&net, NodeId(0), Window(10));
        assert!(r.contains(&NodeId(1)));
        assert!(!r.contains(&NodeId(2)));
    }
}
