//! `infprop` — command-line interface for information-propagation analysis
//! of interaction networks (reproduction of Kumar & Calders, EDBT 2017).
//!
//! See [`commands::USAGE`] or run `infprop help` for the command reference.

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&raw) {
        Ok(p) => p,
        Err(args::ArgError::NoCommand) => {
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    if parsed.boolean("help") {
        println!("{}", commands::USAGE);
        return ExitCode::SUCCESS;
    }
    match commands::dispatch(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
