//! Command implementations: each takes parsed arguments, does the work,
//! and prints human-readable results to stdout.

use crate::args::{ArgError, ParsedArgs};
use infprop_baselines::{
    degree_discount, high_degree, pagerank_top_k, smart_high_degree, ConTinEst, ConTinEstConfig,
    PageRankConfig, Skim, SkimConfig,
};
use infprop_core::obs::{metric_u64, Counter, Gauge, Hist, Span};
use infprop_core::serve as serving;
use infprop_core::trace::{SpanId, TraceEvent, TraceId};
use infprop_core::{
    attribution, find_channel, greedy_top_k_threads, greedy_top_k_traced, trace_to_json,
    validate_trace_json, ApproxIrs, ApproxOracle, ExactIrs, FlightRecorder, FrozenApproxOracle,
    FrozenExactOracle, HeapBytes, InfluenceOracle, LaneTracer, LayeredApproxOracle,
    LayeredExactOracle, LayeredKind, LayeredManifest, MetricsRecorder, NoopRecorder, NoopTracer,
    Recorder, RingTracer, Selection, Tracer, DEFAULT_PRECISION, FROZEN_APPROX_LAYOUT_VERSION,
    FROZEN_EXACT_LAYOUT_VERSION,
};
use infprop_datasets::profiles;
use infprop_diffusion::{tcic_spread, tclt_spread, LtWeights, TcicConfig};
use infprop_hll::CodecError;
use infprop_temporal_graph::{
    io, metrics, Interaction, InteractionNetwork, NetworkStats, NodeId, WeightedStaticGraph, Window,
};
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

type CmdResult = Result<(), Box<dyn Error>>;

/// True when the command should run with a live [`MetricsRecorder`]
/// (`--metrics` prints the snapshot to stdout, `--metrics-out <path>`
/// writes it to a file; giving only the path implies `--metrics`).
fn metrics_requested(args: &ParsedArgs) -> bool {
    args.boolean("metrics") || args.optional("metrics-out").is_some()
}

/// Drains `rec` into a [`MetricsSnapshot`](infprop_core::MetricsSnapshot)
/// and emits its JSON per the `--metrics`/`--metrics-out` flags.
fn emit_metrics(args: &ParsedArgs, rec: &MetricsRecorder) -> CmdResult {
    let json = rec.snapshot().to_json();
    match args.optional("metrics-out") {
        Some(path) => {
            std::fs::write(path, format!("{json}\n"))?;
            println!("wrote metrics snapshot to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Creates the live ring tracer when `--trace-out FILE` was given; every
/// traced command sizes the ring for its `--threads` fan-out (one lane per
/// worker plus the caller's lane 0).
fn trace_requested(args: &ParsedArgs, threads: usize) -> Option<RingTracer> {
    args.optional("trace-out").map(|_| RingTracer::new(threads))
}

/// Harvests `ring`, validates the Chrome-trace export in process (the CLI
/// never writes a file Perfetto would reject), and writes it to the
/// `--trace-out` path.
fn emit_trace(args: &ParsedArgs, ring: &RingTracer) -> CmdResult {
    let Some(path) = args.optional("trace-out") else {
        return Ok(());
    };
    let json = trace_to_json(&ring.records());
    let stats = validate_trace_json(&json)
        .map_err(|e| format!("internal: exported trace failed validation: {e}"))?;
    std::fs::write(path, json)?;
    println!(
        "wrote Chrome trace to {path} ({} spans, {} instants)",
        stats.spans, stats.instants
    );
    Ok(())
}

/// Begins a CLI-level span on its own fresh trace (no-op without a ring).
fn begin_root(ring: Option<&RingTracer>, ev: TraceEvent) -> Option<(LaneTracer<'_>, SpanId)> {
    ring.map(|r| {
        let t = r.lane(0);
        let trace = TraceId(t.alloc_traces(1));
        (t, t.begin(trace, SpanId::NONE, ev))
    })
}

/// Closes a span opened by [`begin_root`].
fn end_root(span: Option<(LaneTracer<'_>, SpanId)>, ev: TraceEvent, payload: u64) {
    if let Some((t, sp)) = span {
        t.end(sp, ev, payload);
    }
}

/// Greedy selection against the optional recorder and tracer — all four
/// combinations monomorphize from `greedy_top_k_traced`.
fn greedy(
    oracle: &(impl InfluenceOracle + Sync),
    k: usize,
    threads: usize,
    rec: Option<&MetricsRecorder>,
    ring: Option<&RingTracer>,
) -> Vec<Selection> {
    match (rec, ring) {
        (Some(rec), Some(r)) => greedy_top_k_traced(oracle, k, threads, rec, r.lane(0)),
        (Some(rec), None) => greedy_top_k_traced(oracle, k, threads, rec, NoopTracer),
        (None, Some(r)) => greedy_top_k_traced(oracle, k, threads, &NoopRecorder, r.lane(0)),
        (None, None) => greedy_top_k_threads(oracle, k, threads),
    }
}

/// Validates a `--beta` value and converts it to a sketch precision.
fn beta_to_precision(beta: usize) -> Result<u8, ArgError> {
    if !beta.is_power_of_two() || !(16..=65_536).contains(&beta) {
        return Err(ArgError::BadValue {
            flag: "beta".into(),
            value: beta.to_string(),
            expected: "a power of two in [16, 65536]",
        });
    }
    Ok(beta.trailing_zeros() as u8)
}

fn load(path: &str) -> Result<io::LoadedNetwork, Box<dyn Error>> {
    Ok(io::read_interactions_path(path)?)
}

fn window_of(args: &ParsedArgs, net: &InteractionNetwork) -> Result<Window, Box<dyn Error>> {
    if let Some(raw) = args.optional("window") {
        let w: i64 = raw.parse().map_err(|_| ArgError::BadValue {
            flag: "window".into(),
            value: raw.into(),
            expected: "an absolute window length (time units)",
        })?;
        let window = Window::try_new(w).map_err(|_| ArgError::BadValue {
            flag: "window".into(),
            value: raw.into(),
            expected: "a window of at least 1 time unit",
        })?;
        Ok(window)
    } else {
        let pct: f64 = args.parse_required("window-pct", "a percentage in [0, 100]")?;
        Ok(net.window_from_percent(pct))
    }
}

/// Resolves `--threads` (defaulting to the machine's available
/// parallelism) for the commands with a parallel fan-out.
fn threads_of(args: &ParsedArgs) -> Result<usize, Box<dyn Error>> {
    let threads: usize = args.parse_or(
        "threads",
        infprop_core::par::default_threads(),
        "a worker count of at least 1",
    )?;
    if threads == 0 {
        return Err(Box::new(ArgError::BadValue {
            flag: "threads".into(),
            value: threads.to_string(),
            expected: "a worker count of at least 1",
        }));
    }
    Ok(threads)
}

/// `infprop stats <file> [--units-per-day N]`
pub fn stats(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one input path")?;
    let loaded = load(path)?;
    let net = &loaded.network;
    let units: i64 = args.parse_or("units-per-day", 86_400, "ticks per day")?;
    let s = NetworkStats::compute(net, units);
    println!("{path}: {s}");
    println!("  distinct timestamps: {}", net.has_distinct_timestamps());
    let deg = metrics::interaction_out_degree_summary(net);
    println!(
        "  out-degree: max {} mean {:.2} gini {:.3}",
        deg.max, deg.mean, deg.gini
    );
    println!(
        "  contact repetition: {:.2} interactions/static-edge | reciprocity {:.3}",
        metrics::contact_repetition(net),
        metrics::reciprocity(net)
    );
    let profile = metrics::temporal_profile(net);
    println!(
        "  inter-arrival: mean {:.1} std {:.1} | burstiness {:.3}",
        profile.mean_gap, profile.std_gap, profile.burstiness
    );
    Ok(())
}

/// `infprop irs <file> --window-pct P [--exact] [--beta B] [--top K]`
pub fn irs(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one input path")?;
    let loaded = load(path)?;
    let net = &loaded.network;
    let window = window_of(args, net)?;
    let top: usize = args.parse_or("top", 10, "an integer")?;
    println!("window = {} time units", window.get());
    let mut sizes: Vec<(NodeId, f64)>;
    if args.boolean("exact") {
        let irs = ExactIrs::compute(net, window);
        sizes = net
            .node_ids()
            .map(|u| (u, irs.irs_size(u) as f64))
            .collect();
    } else {
        let beta: usize = args.parse_or("beta", 512, "a power of two in [16, 65536]")?;
        if !beta.is_power_of_two() || !(16..=65_536).contains(&beta) {
            return Err(Box::new(ArgError::BadValue {
                flag: "beta".into(),
                value: beta.to_string(),
                expected: "a power of two in [16, 65536]",
            }));
        }
        let irs = ApproxIrs::compute_with_precision(net, window, beta.trailing_zeros() as u8);
        sizes = net
            .node_ids()
            .map(|u| (u, irs.irs_size_estimate(u)))
            .collect();
    }
    sizes.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for (u, size) in sizes.into_iter().take(top) {
        let label = loaded.interner.label(u).unwrap_or("?");
        println!("{label:<20} |IRS| = {size:.1}");
    }
    Ok(())
}

/// `infprop topk <file> --k K --window-pct P [--method M] [--seed S]
///  [--metrics] [--metrics-out PATH]`
///
/// The `irs`/`irs-exact` methods freeze the finished summaries into a
/// contiguous arena ([`FrozenExactOracle`]/[`FrozenApproxOracle`]) before
/// the greedy selection — bit-identical picks, contiguous query path.
///
/// With `--metrics`, the `irs`/`irs-exact` methods run the IRS build and
/// the greedy selection against a live recorder (including the
/// `frozen.bytes` gauge); baseline methods still emit a snapshot, but only
/// the sections they exercise are nonzero.
pub fn topk(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one input path")?;
    let loaded = load(path)?;
    let net = &loaded.network;
    let window = window_of(args, net)?;
    let k: usize = args.parse_required("k", "an integer")?;
    let seed: u64 = args.parse_or("seed", 42, "an integer")?;
    let threads = threads_of(args)?;
    let method = args.optional("method").unwrap_or("irs");
    let no_freeze = args.boolean("no-freeze");
    let recorder = metrics_requested(args).then(MetricsRecorder::new);
    let tracer = trace_requested(args, threads);
    let seeds: Vec<NodeId> = match method {
        "irs" => {
            let scan = begin_root(tracer.as_ref(), TraceEvent::BuildReverseScan);
            let irs = match &recorder {
                Some(rec) => {
                    ApproxIrs::compute_with_precision_recorded(net, window, DEFAULT_PRECISION, rec)
                }
                None => ApproxIrs::compute(net, window),
            };
            end_root(
                scan,
                TraceEvent::BuildReverseScan,
                metric_u64(net.interactions().len()),
            );
            let picks = if no_freeze {
                let oracle = irs.oracle();
                if let Some(rec) = &recorder {
                    rec.gauge(Gauge::OracleHeapBytes, metric_u64(oracle.heap_bytes()));
                }
                greedy(&oracle, k, threads, recorder.as_ref(), tracer.as_ref())
            } else {
                let fz = begin_root(tracer.as_ref(), TraceEvent::BuildFreeze);
                let oracle = match &recorder {
                    Some(rec) => irs.freeze_recorded(rec),
                    None => irs.freeze(),
                };
                end_root(fz, TraceEvent::BuildFreeze, metric_u64(oracle.num_nodes()));
                if let Some(rec) = &recorder {
                    rec.gauge(Gauge::OracleHeapBytes, metric_u64(oracle.heap_bytes()));
                }
                greedy(&oracle, k, threads, recorder.as_ref(), tracer.as_ref())
            };
            picks.into_iter().map(|s| s.node).collect()
        }
        "irs-exact" => {
            let scan = begin_root(tracer.as_ref(), TraceEvent::BuildReverseScan);
            let irs = match &recorder {
                Some(rec) => ExactIrs::compute_recorded(net, window, rec),
                None => ExactIrs::compute(net, window),
            };
            end_root(
                scan,
                TraceEvent::BuildReverseScan,
                metric_u64(net.interactions().len()),
            );
            let picks = if no_freeze {
                let oracle = irs.oracle();
                if let Some(rec) = &recorder {
                    rec.gauge(Gauge::OracleHeapBytes, metric_u64(oracle.heap_bytes()));
                }
                greedy(&oracle, k, threads, recorder.as_ref(), tracer.as_ref())
            } else {
                let fz = begin_root(tracer.as_ref(), TraceEvent::BuildFreeze);
                let oracle = match &recorder {
                    Some(rec) => irs.freeze_recorded(rec),
                    None => irs.freeze(),
                };
                end_root(fz, TraceEvent::BuildFreeze, metric_u64(oracle.num_nodes()));
                if let Some(rec) = &recorder {
                    rec.gauge(Gauge::OracleHeapBytes, metric_u64(oracle.heap_bytes()));
                }
                greedy(&oracle, k, threads, recorder.as_ref(), tracer.as_ref())
            };
            picks.into_iter().map(|s| s.node).collect()
        }
        "pagerank" => pagerank_top_k(&net.to_static(), k, &PageRankConfig::default()),
        "hd" => high_degree(&net.to_static(), k),
        "shd" => smart_high_degree(&net.to_static(), k),
        "degree-discount" => degree_discount(&net.to_static(), k, 0.5),
        "skim" => Skim::new(
            &net.to_static(),
            SkimConfig {
                seed,
                ..Default::default()
            },
        )
        .top_k(k),
        "cte" => {
            let weighted = WeightedStaticGraph::from_network(net);
            ConTinEst::new(
                &weighted,
                &ConTinEstConfig::new(window.get() as f64).with_seed(seed),
            )
            .top_k(k)
        }
        other => {
            return Err(Box::new(ArgError::BadValue {
                flag: "method".into(),
                value: other.into(),
                expected: "irs|irs-exact|pagerank|hd|shd|degree-discount|skim|cte",
            }))
        }
    };
    for (rank, u) in seeds.iter().enumerate() {
        let label = loaded.interner.label(*u).unwrap_or("?");
        println!("{:>3}. {label}", rank + 1);
    }
    if let Some(rec) = &recorder {
        emit_metrics(args, rec)?;
    }
    if let Some(ring) = &tracer {
        emit_trace(args, ring)?;
    }
    Ok(())
}

/// `infprop simulate <file> --seeds a,b,c --window-pct P [--p F] [--runs N]
///  [--model tcic|tclt] [--seed S] [--metrics] [--metrics-out PATH]`
///
/// With `--metrics`, the Monte-Carlo spread is timed under `sim.run`, an
/// approximate IRS is built with a live recorder and frozen into a
/// [`FrozenApproxOracle`] arena, and the oracle's `Inf(S)` estimate is
/// printed next to the simulated spread so the two can be compared from
/// one invocation.
pub fn simulate(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one input path")?;
    let loaded = load(path)?;
    let net = &loaded.network;
    let window = window_of(args, net)?;
    let ids = args.node_list("seeds")?;
    let seeds: Vec<NodeId> = ids.into_iter().map(NodeId).collect();
    for s in &seeds {
        if s.index() >= net.num_nodes() {
            return Err(Box::new(ArgError::BadValue {
                flag: "seeds".into(),
                value: s.to_string(),
                expected: "node ids inside the network",
            }));
        }
    }
    let p: f64 = args.parse_or("p", 0.5, "a probability")?;
    let runs: usize = args.parse_or("runs", 100, "an integer")?;
    let seed: u64 = args.parse_or("seed", 42, "an integer")?;
    let threads = threads_of(args)?;
    let model = args.optional("model").unwrap_or("tcic");
    let recorder = metrics_requested(args).then(MetricsRecorder::new);
    let tracer = trace_requested(args, threads);
    let sim_start = recorder.as_ref().map(|rec| rec.span_start());
    let run = begin_root(tracer.as_ref(), TraceEvent::SimulateRun);
    let spread = match model {
        "tcic" => {
            let cfg = TcicConfig::new(window, p)
                .with_runs(runs)
                .with_seed(seed)
                .with_threads(threads);
            tcic_spread(net, &seeds, &cfg)
        }
        "tclt" => {
            let weights = LtWeights::from_network(net);
            tclt_spread(net, &weights, &seeds, window, runs, seed)
        }
        other => {
            return Err(Box::new(ArgError::BadValue {
                flag: "model".into(),
                value: other.into(),
                expected: "tcic|tclt",
            }))
        }
    };
    end_root(run, TraceEvent::SimulateRun, metric_u64(runs));
    println!(
        "{model} spread of {} seeds over {runs} runs (w = {}, p = {p}): {spread:.2}",
        seeds.len(),
        window.get()
    );
    if let Some(rec) = &recorder {
        if let Some(start) = sim_start {
            rec.span_end(Span::SimRun, start);
        }
        rec.add(Counter::SimRuns, metric_u64(runs));
        let irs = ApproxIrs::compute_with_precision_recorded(net, window, DEFAULT_PRECISION, rec);
        let estimate = if args.boolean("no-freeze") {
            let oracle = irs.oracle();
            rec.gauge(Gauge::OracleHeapBytes, metric_u64(oracle.heap_bytes()));
            oracle.influence_recorded(&seeds, rec)
        } else {
            let oracle = irs.freeze_recorded(rec);
            rec.gauge(Gauge::OracleHeapBytes, metric_u64(oracle.heap_bytes()));
            oracle.influence_recorded(&seeds, rec)
        };
        println!("irs oracle estimate Inf(S) = {estimate:.1}");
        emit_metrics(args, rec)?;
    }
    if let Some(ring) = &tracer {
        emit_trace(args, ring)?;
    }
    Ok(())
}

/// `infprop channel <file> --from U --to V --window-pct P`
pub fn channel(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one input path")?;
    let loaded = load(path)?;
    let net = &loaded.network;
    let window = window_of(args, net)?;
    let from: u32 = args.parse_required("from", "a node id")?;
    let to: u32 = args.parse_required("to", "a node id")?;
    match find_channel(net, NodeId(from), NodeId(to), window) {
        Some(c) => {
            println!(
                "channel with {} hops, duration {}, end time {}:",
                c.hops.len(),
                c.duration(),
                c.end_time()
            );
            for hop in &c.hops {
                let s = loaded.interner.label(hop.src).unwrap_or("?");
                let d = loaded.interner.label(hop.dst).unwrap_or("?");
                println!("  {s} -> {d} @ {}", hop.time);
            }
        }
        None => println!("no information channel within the window"),
    }
    Ok(())
}

/// `infprop generate --profile NAME --scale S [--seed N] --out FILE`
pub fn generate(args: &ParsedArgs) -> CmdResult {
    let name = args.required("profile")?;
    let scale: f64 = args.parse_required("scale", "a fraction in (0, 1]")?;
    let seed: u64 = args.parse_or("seed", 42, "an integer")?;
    let out = args.required("out")?;
    let profile = match name {
        "enron" => profiles::enron_like(seed),
        "lkml" => profiles::lkml_like(seed),
        "facebook" => profiles::facebook_like(seed),
        "higgs" => profiles::higgs_like(seed),
        "slashdot" => profiles::slashdot_like(seed),
        "us2016" => profiles::us2016_like(seed),
        other => {
            return Err(Box::new(ArgError::BadValue {
                flag: "profile".into(),
                value: other.into(),
                expected: "enron|lkml|facebook|higgs|slashdot|us2016",
            }))
        }
    };
    let dataset = profile.build(scale);
    io::write_interactions_path(&dataset.network, out)?;
    let s = NetworkStats::compute(&dataset.network, dataset.units_per_day);
    println!("wrote {out}: {s}");
    Ok(())
}

/// `infprop build <file> --window-pct P --out oracle.bin
///  [--beta B | --exact] [--frozen] [--metrics] [--metrics-out PATH]`
///
/// (Also reachable under its historical name `oracle-build`.)
///
/// With `--frozen`, the finished summaries are frozen into a contiguous
/// arena and written in the flat `IPFE` (exact) / `IPFA` (sketch) format,
/// which `oracle-query` loads with bulk reads and no per-node allocation.
///
/// With `--metrics`, the IRS build runs against a live recorder and — after
/// the oracle is written — one recorded individual-influence sweep probes
/// the oracle, so the snapshot carries nonzero `engine.*`, store, and
/// `oracle.*` sections (plus `frozen.bytes` under `--frozen`).
pub fn oracle_build(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one input path")?;
    let loaded = load(path)?;
    let net = &loaded.network;
    let window = window_of(args, net)?;
    let out = args.required("out")?;
    let threads = threads_of(args)?;
    let frozen = args.boolean("frozen");
    let recorder = metrics_requested(args).then(MetricsRecorder::new);
    let tracer = trace_requested(args, threads);
    if args.boolean("layered") {
        build_layered(args, net, window, out, &recorder, tracer.as_ref())?;
        if let Some(rec) = &recorder {
            emit_metrics(args, rec)?;
        }
        if let Some(ring) = &tracer {
            emit_trace(args, ring)?;
        }
        return Ok(());
    }
    let mut w = BufWriter::new(File::create(out)?);
    if args.boolean("exact") {
        let scan = begin_root(tracer.as_ref(), TraceEvent::BuildReverseScan);
        let irs = match &recorder {
            Some(rec) => ExactIrs::compute_recorded(net, window, rec),
            None => ExactIrs::compute(net, window),
        };
        end_root(
            scan,
            TraceEvent::BuildReverseScan,
            metric_u64(net.interactions().len()),
        );
        if frozen {
            let fz = begin_root(tracer.as_ref(), TraceEvent::BuildFreeze);
            let arena = match &recorder {
                Some(rec) => irs.freeze_recorded(rec),
                None => irs.freeze(),
            };
            end_root(fz, TraceEvent::BuildFreeze, metric_u64(net.num_nodes()));
            arena.write_to(&mut w)?;
            println!(
                "wrote {out}: frozen exact arena for {} nodes ({} entries), window = {}",
                net.num_nodes(),
                arena.total_entries(),
                window.get()
            );
            if let Some(rec) = &recorder {
                rec.gauge(Gauge::OracleHeapBytes, metric_u64(arena.heap_bytes()));
                let _ = arena.individuals_recorded(threads, rec);
            }
        } else {
            irs.write_to(&mut w)?;
            println!(
                "wrote {out}: exact summaries for {} nodes ({} entries), window = {}",
                net.num_nodes(),
                irs.total_entries(),
                window.get()
            );
            if let Some(rec) = &recorder {
                let oracle = irs.oracle();
                rec.gauge(Gauge::OracleHeapBytes, metric_u64(oracle.heap_bytes()));
                let _ = oracle.individuals_recorded(threads, rec);
            }
        }
    } else {
        let beta: usize = args.parse_or("beta", 512, "a power of two in [16, 65536]")?;
        let precision = beta_to_precision(beta)?;
        let scan = begin_root(tracer.as_ref(), TraceEvent::BuildReverseScan);
        let irs = match &recorder {
            Some(rec) => ApproxIrs::compute_with_precision_recorded(net, window, precision, rec),
            None => ApproxIrs::compute_with_precision(net, window, precision),
        };
        end_root(
            scan,
            TraceEvent::BuildReverseScan,
            metric_u64(net.interactions().len()),
        );
        if frozen {
            let fz = begin_root(tracer.as_ref(), TraceEvent::BuildFreeze);
            let arena = match &recorder {
                Some(rec) => irs.freeze_recorded(rec),
                None => irs.freeze(),
            };
            end_root(fz, TraceEvent::BuildFreeze, metric_u64(net.num_nodes()));
            arena.write_to(&mut w)?;
            println!(
                "wrote {out}: frozen register arena for {} nodes, beta = {beta}, window = {}",
                net.num_nodes(),
                window.get()
            );
            if let Some(rec) = &recorder {
                rec.gauge(Gauge::OracleHeapBytes, metric_u64(arena.heap_bytes()));
                let _ = arena.individuals_recorded(threads, rec);
            }
        } else {
            let oracle = irs.oracle();
            oracle.write_to(&mut w)?;
            println!(
                "wrote {out}: {} node sketches, beta = {beta}, window = {}",
                net.num_nodes(),
                window.get()
            );
            if let Some(rec) = &recorder {
                rec.gauge(Gauge::OracleHeapBytes, metric_u64(oracle.heap_bytes()));
                let _ = oracle.individuals_recorded(threads, rec);
            }
        }
    }
    if let Some(rec) = &recorder {
        emit_metrics(args, rec)?;
    }
    if let Some(ring) = &tracer {
        emit_trace(args, ring)?;
    }
    Ok(())
}

/// `build --layered`: builds the base arena from the network, seeds the
/// delta with the window tail, and saves the generation-0 layered
/// directory (see `append` / `compact`).
fn build_layered(
    args: &ParsedArgs,
    net: &InteractionNetwork,
    window: Window,
    out: &str,
    recorder: &Option<MetricsRecorder>,
    tracer: Option<&RingTracer>,
) -> CmdResult {
    let dir = Path::new(out);
    if args.boolean("exact") {
        let scan = begin_root(tracer, TraceEvent::BuildReverseScan);
        let irs = match recorder {
            Some(rec) => ExactIrs::compute_recorded(net, window, rec),
            None => ExactIrs::compute(net, window),
        };
        end_root(
            scan,
            TraceEvent::BuildReverseScan,
            metric_u64(net.interactions().len()),
        );
        let fz = begin_root(tracer, TraceEvent::BuildFreeze);
        let oracle = irs.layered(net);
        end_root(fz, TraceEvent::BuildFreeze, metric_u64(net.num_nodes()));
        oracle.save_layered(dir)?;
        println!(
            "wrote {out}: layered exact oracle (generation 0) for {} nodes, window = {}, tail = {} interactions",
            net.num_nodes(),
            window.get(),
            oracle.delta().tail().len()
        );
    } else {
        let beta: usize = args.parse_or("beta", 512, "a power of two in [16, 65536]")?;
        let precision = beta_to_precision(beta)?;
        let scan = begin_root(tracer, TraceEvent::BuildReverseScan);
        let irs = match recorder {
            Some(rec) => ApproxIrs::compute_with_precision_recorded(net, window, precision, rec),
            None => ApproxIrs::compute_with_precision(net, window, precision),
        };
        end_root(
            scan,
            TraceEvent::BuildReverseScan,
            metric_u64(net.interactions().len()),
        );
        let fz = begin_root(tracer, TraceEvent::BuildFreeze);
        let oracle = irs.layered(net);
        end_root(fz, TraceEvent::BuildFreeze, metric_u64(net.num_nodes()));
        oracle.save_layered(dir)?;
        println!(
            "wrote {out}: layered sketch oracle (generation 0) for {} nodes, beta = {beta}, window = {}, tail = {} interactions",
            net.num_nodes(),
            window.get(),
            oracle.delta().tail().len()
        );
    }
    Ok(())
}

/// Reads a forward-append file: `src dst time` per line with **raw numeric
/// node ids** in the oracle's id space (`#` comments and blank lines
/// skipped; new ids grow the universe). Returns the batch sorted by time.
fn read_append_file(path: &str) -> Result<Vec<Interaction>, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)?;
    let mut batch = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split([' ', '\t', ',']).filter(|p| !p.is_empty());
        let (Some(s), Some(d), Some(t)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("{path}:{}: expected `src dst time`", idx + 1).into());
        };
        let src: u32 = s
            .parse()
            .map_err(|_| format!("{path}:{}: bad src node id {s:?}", idx + 1))?;
        let dst: u32 = d
            .parse()
            .map_err(|_| format!("{path}:{}: bad dst node id {d:?}", idx + 1))?;
        let time: i64 = t
            .parse()
            .map_err(|_| format!("{path}:{}: bad timestamp {t:?}", idx + 1))?;
        batch.push(Interaction::from_raw(src, dst, time));
    }
    batch.sort_by_key(|i| i.time);
    Ok(batch)
}

/// `infprop append <dir> <file> [--metrics] [--metrics-out PATH]`
///
/// Buffers the file's interactions (which must not move behind the
/// oracle's frontier) into the layered directory's pending log. Only the
/// `gen-N.pending` file is rewritten — the frozen base arena, tail, and
/// manifest stay untouched until the next `compact`.
pub fn append(args: &ParsedArgs) -> CmdResult {
    let (dir, file) = args.two_positional("expected an oracle directory and an append file")?;
    let batch = read_append_file(file)?;
    let recorder = metrics_requested(args).then(MetricsRecorder::new);
    let tracer = trace_requested(args, 1);
    let dir_path = Path::new(dir);
    let manifest = LayeredManifest::read_from_dir(dir_path)?;
    let sp = begin_root(tracer.as_ref(), TraceEvent::AppendBatch);
    let (generation, pending) = match manifest.kind {
        LayeredKind::Exact => {
            let mut oracle = LayeredExactOracle::open_layered(dir_path)?;
            match &recorder {
                Some(rec) => oracle.append_batch_recorded(&batch, rec)?,
                None => oracle.append_batch_recorded(&batch, &NoopRecorder)?,
            }
            oracle.persist_pending(dir_path)?;
            (oracle.generation(), oracle.delta().pending().len())
        }
        LayeredKind::Approx => {
            let mut oracle = LayeredApproxOracle::open_layered(dir_path)?;
            match &recorder {
                Some(rec) => oracle.append_batch_recorded(&batch, rec)?,
                None => oracle.append_batch_recorded(&batch, &NoopRecorder)?,
            }
            oracle.persist_pending(dir_path)?;
            (oracle.generation(), oracle.delta().pending().len())
        }
    };
    end_root(sp, TraceEvent::AppendBatch, metric_u64(batch.len()));
    println!(
        "appended {} interactions to {dir} (generation {generation}, {pending} pending)",
        batch.len()
    );
    if let Some(rec) = &recorder {
        emit_metrics(args, rec)?;
    }
    if let Some(ring) = &tracer {
        emit_trace(args, ring)?;
    }
    Ok(())
}

/// `infprop compact <dir> [--metrics] [--metrics-out PATH]`
///
/// LSM-style re-freeze: expires interactions outside the window of the
/// frontier, rebuilds a fresh base arena over the survivors, and commits
/// the next generation (previous generation files are swept only after
/// the manifest rename, so an interrupted compaction leaves the old
/// generation loadable).
pub fn compact(args: &ParsedArgs) -> CmdResult {
    let dir = args.one_positional("expected exactly one oracle directory")?;
    let recorder = metrics_requested(args).then(MetricsRecorder::new);
    let tracer = trace_requested(args, 1);
    let dir_path = Path::new(dir);
    let manifest = LayeredManifest::read_from_dir(dir_path)?;
    let (generation, expired, tail) = match manifest.kind {
        LayeredKind::Exact => {
            let mut oracle = LayeredExactOracle::open_layered(dir_path)?;
            let before = oracle.delta().log().len();
            match (&recorder, &tracer) {
                (Some(rec), Some(r)) => oracle.compact_traced(rec, r.lane(0)),
                (Some(rec), None) => oracle.compact_recorded(rec),
                (None, Some(r)) => oracle.compact_traced(&NoopRecorder, r.lane(0)),
                (None, None) => oracle.compact(),
            }
            oracle.save_layered(dir_path)?;
            let tail = oracle.delta().tail().len();
            (oracle.generation(), before - tail, tail)
        }
        LayeredKind::Approx => {
            let mut oracle = LayeredApproxOracle::open_layered(dir_path)?;
            let before = oracle.delta().log().len();
            match (&recorder, &tracer) {
                (Some(rec), Some(r)) => oracle.compact_traced(rec, r.lane(0)),
                (Some(rec), None) => oracle.compact_recorded(rec),
                (None, Some(r)) => oracle.compact_traced(&NoopRecorder, r.lane(0)),
                (None, None) => oracle.compact(),
            }
            oracle.save_layered(dir_path)?;
            let tail = oracle.delta().tail().len();
            (oracle.generation(), before - tail, tail)
        }
    };
    println!(
        "compacted {dir}: generation {generation}, {expired} interactions expired, {tail} in tail"
    );
    if let Some(rec) = &recorder {
        emit_metrics(args, rec)?;
    }
    if let Some(ring) = &tracer {
        emit_trace(args, ring)?;
    }
    Ok(())
}

/// One loaded oracle of any supported on-disk format, unified for the
/// query loop of [`oracle_query`].
enum LoadedOracle {
    ExactSummaries(ExactIrs),
    FrozenExact(FrozenExactOracle),
    FrozenApprox(FrozenApproxOracle),
    Sketches(ApproxOracle),
    LayeredExact(Box<LayeredExactOracle>),
    LayeredApprox(Box<LayeredApproxOracle>),
}

impl LoadedOracle {
    /// Human-readable description of the detected on-disk format.
    fn format(&self) -> String {
        match self {
            LoadedOracle::ExactSummaries(_) => "IPEI exact summaries (live)".into(),
            LoadedOracle::FrozenExact(_) => "IPFE frozen exact arena".into(),
            LoadedOracle::FrozenApprox(_) => "IPFA frozen register arena".into(),
            LoadedOracle::Sketches(_) => "IPAO sketch oracle (live)".into(),
            LoadedOracle::LayeredExact(o) => {
                format!(
                    "layered exact oracle directory (generation {}, {} pending)",
                    o.generation(),
                    o.delta().pending().len()
                )
            }
            LoadedOracle::LayeredApprox(o) => {
                format!(
                    "layered sketch oracle directory (generation {}, {} pending)",
                    o.generation(),
                    o.delta().pending().len()
                )
            }
        }
    }

    fn num_nodes(&self) -> usize {
        match self {
            LoadedOracle::ExactSummaries(v) => v.num_nodes(),
            LoadedOracle::FrozenExact(v) => v.num_nodes(),
            LoadedOracle::FrozenApprox(v) => v.num_nodes(),
            LoadedOracle::Sketches(v) => v.num_nodes(),
            LoadedOracle::LayeredExact(v) => InfluenceOracle::num_nodes(v.as_ref()),
            LoadedOracle::LayeredApprox(v) => InfluenceOracle::num_nodes(v.as_ref()),
        }
    }

    fn influence(&self, seeds: &[NodeId], rec: Option<&MetricsRecorder>) -> f64 {
        match rec {
            Some(rec) => match self {
                LoadedOracle::ExactSummaries(v) => v.oracle().influence_recorded(seeds, rec),
                LoadedOracle::FrozenExact(v) => v.influence_recorded(seeds, rec),
                LoadedOracle::FrozenApprox(v) => v.influence_recorded(seeds, rec),
                LoadedOracle::Sketches(v) => v.influence_recorded(seeds, rec),
                LoadedOracle::LayeredExact(v) => v.influence_recorded(seeds, rec),
                LoadedOracle::LayeredApprox(v) => v.influence_recorded(seeds, rec),
            },
            None => match self {
                LoadedOracle::ExactSummaries(v) => v.oracle().influence(seeds),
                LoadedOracle::FrozenExact(v) => v.influence(seeds),
                LoadedOracle::FrozenApprox(v) => v.influence(seeds),
                LoadedOracle::Sketches(v) => v.influence(seeds),
                LoadedOracle::LayeredExact(v) => v.influence(seeds),
                LoadedOracle::LayeredApprox(v) => v.influence(seeds),
            },
        }
    }

    /// Answers every seed set through the true batch API where the format
    /// has one (frozen arenas and layered oracles), amortizing seed dedup
    /// and per-query scratch across the whole file and fanning out over
    /// `threads` workers. The live single-file formats (`IPEI`/`IPAO`)
    /// have no frozen arena to batch over, so they fall back to the
    /// per-query path — timed per query under `kernel.query_ns` so the
    /// latency summary is available for every format.
    fn influence_many(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: Option<&MetricsRecorder>,
        ring: Option<&RingTracer>,
    ) -> Vec<f64> {
        if let Some(r) = ring {
            return self.influence_many_traced(seed_sets, threads, rec, r);
        }
        match rec {
            Some(rec) => match self {
                LoadedOracle::FrozenExact(v) => {
                    v.influence_many_frozen_recorded(seed_sets, threads, rec)
                }
                LoadedOracle::FrozenApprox(v) => {
                    v.influence_many_frozen_recorded(seed_sets, threads, rec)
                }
                LoadedOracle::LayeredExact(v) => {
                    v.influence_many_frozen_recorded(seed_sets, threads, rec)
                }
                LoadedOracle::LayeredApprox(v) => {
                    v.influence_many_frozen_recorded(seed_sets, threads, rec)
                }
                live => seed_sets
                    .iter()
                    .map(|seeds| {
                        let tq = rec.span_start();
                        let influence = live.influence(seeds, Some(rec));
                        if let Some(ns) = tq.elapsed_ns() {
                            rec.record(Hist::KernelQueryNs, ns);
                        }
                        influence
                    })
                    .collect(),
            },
            None => match self {
                LoadedOracle::FrozenExact(v) => v.influence_many_frozen(seed_sets, threads),
                LoadedOracle::FrozenApprox(v) => v.influence_many_frozen(seed_sets, threads),
                LoadedOracle::LayeredExact(v) => v.influence_many_frozen(seed_sets, threads),
                LoadedOracle::LayeredApprox(v) => v.influence_many_frozen(seed_sets, threads),
                live => seed_sets
                    .iter()
                    .map(|seeds| live.influence(seeds, None))
                    .collect(),
            },
        }
    }

    /// Traced twin of [`LoadedOracle::influence_many`]: frozen and layered
    /// formats answer through the traced batch kernel (one trace per batch
    /// element, `query.batch` + `query.element` spans on lane 0); live
    /// single-file formats keep their per-query fallback, wrapped in a
    /// CLI-level `query.batch` span with one `query.element` span per line.
    fn influence_many_traced(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: Option<&MetricsRecorder>,
        ring: &RingTracer,
    ) -> Vec<f64> {
        macro_rules! frozen_traced {
            ($v:expr) => {
                match rec {
                    Some(rec) => {
                        $v.influence_many_frozen_traced(seed_sets, threads, rec, ring.lane(0))
                    }
                    None => $v.influence_many_frozen_traced(
                        seed_sets,
                        threads,
                        &NoopRecorder,
                        ring.lane(0),
                    ),
                }
            };
        }
        match self {
            LoadedOracle::FrozenExact(v) => frozen_traced!(v),
            LoadedOracle::FrozenApprox(v) => frozen_traced!(v),
            LoadedOracle::LayeredExact(v) => frozen_traced!(v),
            LoadedOracle::LayeredApprox(v) => frozen_traced!(v),
            live => {
                let t = ring.lane(0);
                let trace = TraceId(t.alloc_traces(1));
                let batch = t.begin(trace, SpanId::NONE, TraceEvent::QueryBatch);
                let answers = seed_sets
                    .iter()
                    .map(|seeds| {
                        let sp = t.begin(trace, batch, TraceEvent::QueryElement);
                        let tq = rec.map(|rec| rec.span_start());
                        let influence = live.influence(seeds, rec);
                        if let (Some(rec), Some(tq)) = (rec, tq) {
                            if let Some(ns) = tq.elapsed_ns() {
                                rec.record(Hist::KernelQueryNs, ns);
                            }
                        }
                        t.end(sp, TraceEvent::QueryElement, metric_u64(seeds.len()));
                        influence
                    })
                    .collect();
                t.end(batch, TraceEvent::QueryBatch, metric_u64(seed_sets.len()));
                answers
            }
        }
    }
}

/// Rewrites a [`CodecError`] from a frozen-arena load into a precise,
/// format-aware message: which format was detected, which layout version
/// the file carries, and which versions this build reads. Three on-disk
/// versions exist now, so "corrupt file" is no longer a useful diagnosis
/// for what is usually just a build/file version skew.
fn describe_arena_error(format: &str, current: u8, err: CodecError) -> Box<dyn Error> {
    match err {
        CodecError::FutureVersion(found) => format!(
            "{format}: file has layout version {found}, but this build reads versions 1..={current} \
             (rebuild the arena or upgrade infprop)"
        )
        .into(),
        CodecError::BadVersion(found) => format!(
            "{format}: file has unknown layout version {found}, expected 1..={current}"
        )
        .into(),
        other => format!("{format}: {other}").into(),
    }
}

/// Loads any supported oracle artefact: a layered directory (dispatched
/// through its `MANIFEST`) or a single file (format detected by magic).
/// Frozen arenas load zero-copy through
/// [`ArenaBytes`](infprop_core::ArenaBytes) — `mmap(2)` when built with
/// `--features mmap`, one aligned bulk read otherwise — then get the deep
/// per-byte validation the structural load skips.
fn load_oracle(path: &str) -> Result<LoadedOracle, Box<dyn Error>> {
    if std::fs::metadata(path)?.is_dir() {
        let dir = Path::new(path);
        let manifest = LayeredManifest::read_from_dir(dir)?;
        return Ok(match manifest.kind {
            LayeredKind::Exact => {
                LoadedOracle::LayeredExact(Box::new(LayeredExactOracle::open_layered(dir)?))
            }
            LayeredKind::Approx => {
                LoadedOracle::LayeredApprox(Box::new(LayeredApproxOracle::open_layered(dir)?))
            }
        });
    }
    let mut magic = [0u8; 4];
    {
        use std::io::Read;
        File::open(path)?.read_exact(&mut magic)?;
    }
    Ok(match &magic {
        b"IPEI" => {
            let mut r = BufReader::new(File::open(path)?);
            LoadedOracle::ExactSummaries(ExactIrs::read_from(&mut r)?)
        }
        b"IPFE" => {
            let oracle = FrozenExactOracle::load(Path::new(path)).map_err(|e| {
                describe_arena_error("IPFE frozen exact arena", FROZEN_EXACT_LAYOUT_VERSION, e)
            })?;
            oracle
                .validate()
                .map_err(|v| format!("IPFE frozen exact arena: {v}"))?;
            LoadedOracle::FrozenExact(oracle)
        }
        b"IPFA" => {
            let oracle = FrozenApproxOracle::load(Path::new(path)).map_err(|e| {
                describe_arena_error(
                    "IPFA frozen register arena",
                    FROZEN_APPROX_LAYOUT_VERSION,
                    e,
                )
            })?;
            oracle
                .validate()
                .map_err(|v| format!("IPFA frozen register arena: {v}"))?;
            LoadedOracle::FrozenApprox(oracle)
        }
        _ => {
            let mut r = BufReader::new(File::open(path)?);
            LoadedOracle::Sketches(ApproxOracle::read_from(&mut r)?)
        }
    })
}

/// `infprop oracle-query <oracle-path> (--seeds a,b,c | --queries FILE)
///  [--threads N] [--metrics] [--metrics-out PATH]`
///
/// `<oracle-path>` is a single-file oracle (format detected by magic:
/// `IPAO` sketches, `IPEI` exact summaries, frozen arenas `IPFE`/`IPFA`)
/// or a layered oracle directory written by `build --layered` (detected
/// by its `MANIFEST`). `--queries FILE` answers one seed set per line
/// (comma-separated node ids): the whole file is parsed up front and
/// answered in one call through the frozen batch API (`--threads N`
/// controls the fan-out; live formats fall back to a per-query loop).
/// With `--metrics`, the detected format is printed, the load is timed
/// under the `oracle.load` span, every query is counted in the
/// `oracle.*`/`kernel.*` sections of the snapshot, and the batch prints
/// a per-query p50/p99/p999/mean latency line from the
/// `kernel.query_ns` histogram. With `--trace-out FILE`, the load and
/// every query run under the causal tracer and the run is exported as
/// Chrome Trace Event JSON.
pub fn oracle_query(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one oracle path")?;
    let threads = threads_of(args)?;
    let recorder = metrics_requested(args).then(MetricsRecorder::new);
    let tracer = trace_requested(args, threads);
    let load_start = recorder.as_ref().map(|rec| rec.span_start());
    let load_sp = begin_root(tracer.as_ref(), TraceEvent::LoadOracle);
    let oracle = load_oracle(path)?;
    end_root(
        load_sp,
        TraceEvent::LoadOracle,
        metric_u64(oracle.num_nodes()),
    );
    if let (Some(rec), Some(start)) = (&recorder, load_start) {
        if let Some(ns) = start.elapsed_ns() {
            rec.record(Hist::OracleLoadNs, ns);
            println!("load latency: {:.3} ms", ns as f64 / 1e6);
        }
        rec.span_end(Span::OracleLoad, start);
        println!("format: {}", oracle.format());
    }
    let n = oracle.num_nodes();
    let check_seeds = |seeds: &[NodeId]| -> Result<(), ArgError> {
        for s in seeds {
            if s.index() >= n {
                return Err(ArgError::BadValue {
                    flag: "seeds".into(),
                    value: s.to_string(),
                    expected: "node ids inside the oracle",
                });
            }
        }
        Ok(())
    };
    if let Some(queries) = args.optional("queries") {
        // Parse the whole file up front so every query goes through the
        // batch API in one call: dedup, scratch, and thread fan-out are
        // amortized across the file instead of paid per line.
        let text = std::fs::read_to_string(queries)?;
        let mut labels: Vec<&str> = Vec::new();
        let mut seed_sets: Vec<Vec<NodeId>> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut seeds = Vec::new();
            for tok in line.split(',').filter(|t| !t.trim().is_empty()) {
                let id: u32 = tok
                    .trim()
                    .parse()
                    .map_err(|_| format!("{queries}: bad node id {tok:?}"))?;
                seeds.push(NodeId(id));
            }
            check_seeds(&seeds)?;
            labels.push(line);
            seed_sets.push(seeds);
        }
        let answers =
            oracle.influence_many(&seed_sets, threads, recorder.as_ref(), tracer.as_ref());
        for (line, influence) in labels.iter().zip(&answers) {
            println!("Inf({line}) = {influence:.1}");
        }
        if let Some(rec) = &recorder {
            let snap = rec.snapshot();
            if let Some(h) = snap
                .hists
                .iter()
                .find(|h| h.name == Hist::KernelQueryNs.name() && h.count > 0)
            {
                println!(
                    "per-query latency: p50 {} ns, p99 {} ns, p999 {} ns, mean {:.1} ns over {} queries",
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.mean(),
                    h.count
                );
            }
        }
    } else {
        let ids = args.node_list("seeds")?;
        let seeds: Vec<NodeId> = ids.into_iter().map(NodeId).collect();
        check_seeds(&seeds)?;
        let q = begin_root(tracer.as_ref(), TraceEvent::QueryBatch);
        let influence = oracle.influence(&seeds, recorder.as_ref());
        end_root(q, TraceEvent::QueryBatch, 1);
        println!("Inf(S) = {influence:.1}");
    }
    if let Some(rec) = &recorder {
        emit_metrics(args, rec)?;
    }
    if let Some(ring) = &tracer {
        emit_trace(args, ring)?;
    }
    Ok(())
}

/// Greedy selection over any loaded oracle format (used by `profile`).
fn greedy_any(
    oracle: &LoadedOracle,
    k: usize,
    threads: usize,
    rec: Option<&MetricsRecorder>,
    ring: Option<&RingTracer>,
) -> Vec<Selection> {
    match oracle {
        LoadedOracle::ExactSummaries(v) => greedy(&v.oracle(), k, threads, rec, ring),
        LoadedOracle::FrozenExact(v) => greedy(v, k, threads, rec, ring),
        LoadedOracle::FrozenApprox(v) => greedy(v, k, threads, rec, ring),
        LoadedOracle::Sketches(v) => greedy(v, k, threads, rec, ring),
        LoadedOracle::LayeredExact(v) => greedy(v.as_ref(), k, threads, rec, ring),
        LoadedOracle::LayeredApprox(v) => greedy(v.as_ref(), k, threads, rec, ring),
    }
}

/// `infprop profile <oracle-path> [--queries FILE | --rounds N] [--k K]
///  [--threads N] [--slowest K] [--metrics] [--metrics-out FILE]
///  [--trace-out FILE]`
///
/// Always-on profiler: loads an oracle, replays a query workload against
/// it with the ring tracer live (the workload is either `--queries FILE`,
/// one comma-separated seed set per line, or a synthesized deterministic
/// set of `--rounds` three-seed queries), optionally runs a greedy
/// `--k`-seed selection, then prints a per-phase self/total time
/// attribution table and the `--slowest` traces by wall time from the
/// flight recorder. `--trace-out FILE` additionally exports the full
/// Chrome trace for Perfetto.
pub fn profile(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one oracle path")?;
    let threads = threads_of(args)?;
    let recorder = metrics_requested(args).then(MetricsRecorder::new);
    let ring = RingTracer::new(threads);
    let t = ring.lane(0);
    let root_trace = TraceId(t.alloc_traces(1));
    let root = t.begin(root_trace, SpanId::NONE, TraceEvent::ProfileRun);

    let load_start = recorder.as_ref().map(|rec| rec.span_start());
    let load_sp = t.begin(root_trace, root, TraceEvent::LoadOracle);
    let oracle = load_oracle(path)?;
    t.end(
        load_sp,
        TraceEvent::LoadOracle,
        metric_u64(oracle.num_nodes()),
    );
    if let (Some(rec), Some(start)) = (&recorder, load_start) {
        if let Some(ns) = start.elapsed_ns() {
            rec.record(Hist::OracleLoadNs, ns);
        }
        rec.span_end(Span::OracleLoad, start);
    }
    println!("format: {}", oracle.format());
    let n = oracle.num_nodes();

    let seed_sets: Vec<Vec<NodeId>> = match args.optional("queries") {
        Some(queries) => {
            let text = std::fs::read_to_string(queries)?;
            let mut sets = Vec::new();
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut seeds = Vec::new();
                for tok in line.split(',').filter(|tk| !tk.trim().is_empty()) {
                    let id: u32 = tok
                        .trim()
                        .parse()
                        .map_err(|_| format!("{queries}: bad node id {tok:?}"))?;
                    if (id as usize) >= n {
                        return Err(Box::new(ArgError::BadValue {
                            flag: "queries".into(),
                            value: id.to_string(),
                            expected: "node ids inside the oracle",
                        }));
                    }
                    seeds.push(NodeId(id));
                }
                sets.push(seeds);
            }
            sets
        }
        None => {
            // Deterministic synthetic workload: `--rounds` three-seed
            // queries striding the id space so repeated runs are
            // comparable without a query file.
            let rounds: usize = args.parse_or("rounds", 64, "an integer")?;
            (0..rounds)
                .map(|q| {
                    if n == 0 {
                        Vec::new()
                    } else {
                        (0..3)
                            .map(|j| NodeId(((q * 7 + j * 11 + 1) % n) as u32))
                            .collect()
                    }
                })
                .collect()
        }
    };
    let answers = oracle.influence_many(&seed_sets, threads, recorder.as_ref(), Some(&ring));
    let total: f64 = answers.iter().sum();
    println!(
        "answered {} queries (sum of Inf = {total:.1})",
        seed_sets.len()
    );

    let k: usize = args.parse_or("k", 0, "an integer")?;
    if k > 0 {
        let picks = greedy_any(&oracle, k, threads, recorder.as_ref(), Some(&ring));
        let ids: Vec<String> = picks.iter().map(|s| s.node.0.to_string()).collect();
        println!("greedy top-{k}: [{}]", ids.join(", "));
    }
    t.end(root, TraceEvent::ProfileRun, metric_u64(seed_sets.len()));

    let records = ring.records();
    println!("phase attribution (total includes children, self excludes them):");
    println!(
        "{:<24} {:>8} {:>14} {:>14}",
        "event", "count", "total ms", "self ms"
    );
    for stat in attribution(&records) {
        println!(
            "{:<24} {:>8} {:>14.3} {:>14.3}",
            stat.event.name(),
            stat.count,
            stat.total_ns as f64 / 1e6,
            stat.self_ns as f64 / 1e6
        );
    }
    let slowest: usize = args.parse_or("slowest", 8, "an integer")?;
    let mut flight = FlightRecorder::new(slowest);
    flight.absorb(&records);
    let kept = flight.slowest();
    if !kept.is_empty() {
        println!("slowest {} traces by wall time:", kept.len());
        for s in kept {
            println!(
                "  trace {:>4}  {:<20} wall {:>12.3} ms  ({} spans)",
                s.trace.0,
                s.root.name(),
                s.wall_ns as f64 / 1e6,
                s.spans
            );
        }
    }
    if let Some(rec) = &recorder {
        emit_metrics(args, rec)?;
    }
    emit_trace(args, &ring)?;
    Ok(())
}

/// Parses the `--socket`/`--tcp` listener flags shared by `serve` and
/// `bench-serve` (at least one required for `serve`; exactly the server's
/// address for `bench-serve`).
fn listener_flags(args: &ParsedArgs) -> (Option<String>, Option<String>) {
    (
        args.optional("socket").map(str::to_owned),
        args.optional("tcp").map(str::to_owned),
    )
}

/// `infprop serve <oracle-path>… (--socket PATH | --tcp ADDR) [--threads N]
///  [--metrics] [--metrics-out FILE] [--trace-out FILE]`
///
/// Maps one or more frozen arenas / layered directories zero-copy and
/// serves `influence`/`topk`/`summary` requests over the length-prefixed
/// binary protocol (see DESIGN.md §15) until a client sends a `SHUTDOWN`
/// frame. Oracle indices in requests follow the positional order given
/// here. Each arena's load is timed into the `oracle.load_ns` histogram
/// and printed as a latency line; with `--metrics` the final snapshot
/// (including the `serve.*` counters and request latency histograms) is
/// emitted on shutdown, and `--trace-out` exports every `serve.request`
/// span from the flight ring.
pub fn serve(args: &ParsedArgs) -> CmdResult {
    if args.positional.is_empty() {
        return Err(ArgError::Positional("expected at least one oracle path").into());
    }
    let threads = threads_of(args)?;
    let (socket, tcp) = listener_flags(args);
    if socket.is_none() && tcp.is_none() {
        return Err(ArgError::MissingFlag("socket (or --tcp)").into());
    }
    let recorder = metrics_requested(args).then(MetricsRecorder::new);
    let ring = trace_requested(args, threads);
    // Loads always run timed: the latency line is part of the serve
    // contract, not a `--metrics` extra.
    let load_clock = MetricsRecorder::new();
    let mut oracles = Vec::with_capacity(args.positional.len());
    for path in &args.positional {
        let t0 = load_clock.span_start();
        let oracle = match &recorder {
            Some(rec) => serving::ServedOracle::open_recorded(Path::new(path), rec),
            None => serving::ServedOracle::open_recorded(Path::new(path), &NoopRecorder),
        }
        .map_err(|e| format!("{path}: {e}"))?;
        let ns = t0.elapsed_ns().unwrap_or(0);
        println!(
            "oracle {}: {path}: {} — load latency: {:.3} ms",
            oracles.len(),
            oracle.describe(),
            ns as f64 / 1e6
        );
        oracles.push(oracle);
    }
    let config = serving::ServerConfig {
        unix_path: socket.map(Into::into),
        tcp_addr: tcp,
        threads,
    };
    let server = serving::Server::bind(&config, oracles)?;
    if let Some(path) = &config.unix_path {
        println!("listening on unix socket {}", path.display());
    }
    if let Some(addr) = server.tcp_addr() {
        println!("listening on tcp {addr}");
    }
    println!(
        "serving {} oracle(s); send a SHUTDOWN frame to stop",
        server.oracles().len()
    );
    match (&recorder, &ring) {
        (Some(rec), Some(r)) => server.run(rec, r.lane(0))?,
        (Some(rec), None) => server.run(rec, NoopTracer)?,
        (None, Some(r)) => server.run(&NoopRecorder, r.lane(0))?,
        (None, None) => server.run(&NoopRecorder, NoopTracer)?,
    }
    println!("server drained");
    if let Some(rec) = &recorder {
        let snap = rec.snapshot();
        if let Some(h) = snap
            .hists
            .iter()
            .find(|h| h.name == Hist::ServeRequestNs.name() && h.count > 0)
        {
            println!(
                "per-request latency: p50 {} ns, p99 {} ns, p999 {} ns, mean {:.1} ns over {} requests",
                h.quantile(0.50),
                h.quantile(0.99),
                h.quantile(0.999),
                h.mean(),
                h.count
            );
        }
        emit_metrics(args, rec)?;
    }
    if let Some(r) = &ring {
        emit_trace(args, r)?;
    }
    Ok(())
}

/// Exact quantile from a sorted latency sample (the bench client keeps raw
/// nanosecond samples, so unlike the bucketed histogram quantiles these
/// are not quantized to power-of-two edges).
fn sample_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// `infprop bench-serve <oracle-path> (--socket PATH | --tcp ADDR)
///  --clients N [--batches B] [--batch-size Q] [--oracle I]`
///
/// Load-generating client for a running `infprop serve` instance. Loads
/// the same oracle in-process, synthesizes a deterministic workload
/// (strided three-seed sets, the `profile` recipe), and first asserts that
/// the served answers are **bit-identical** to the in-process
/// `influence_many_frozen` answers — only then does it time anything. Each
/// of the `--clients` connections then drives `--batches` influence frames
/// of `--batch-size` seed sets back-to-back; the report prints aggregate
/// queries/s plus exact p50/p99/p999 per-request latencies.
pub fn bench_serve(args: &ParsedArgs) -> CmdResult {
    let path = args.one_positional("expected exactly one oracle path")?;
    let (socket, tcp) = listener_flags(args);
    let clients: usize = args.parse_required("clients", "a client count of at least 1")?;
    if clients == 0 || (socket.is_none() && tcp.is_none()) {
        return Err(ArgError::BadValue {
            flag: "clients".into(),
            value: clients.to_string(),
            expected: "at least 1 client and a --socket or --tcp address",
        }
        .into());
    }
    let batches: usize = args.parse_or("batches", 32, "an integer")?;
    let batch_size: usize = args.parse_or("batch-size", 16, "an integer")?;
    let oracle_idx: u8 = args.parse_or("oracle", 0, "an oracle index")?;

    let connect = || -> Result<serving::Client, std::io::Error> {
        match (&socket, &tcp) {
            (Some(path), _) => serving::Client::connect_unix(Path::new(path)),
            (_, Some(addr)) => serving::Client::connect_tcp(addr),
            (None, None) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no server address",
            )),
        }
    };

    // The in-process reference the served answers must match bit-for-bit.
    let reference = load_oracle(path)?;
    let n = reference.num_nodes();
    if n == 0 {
        return Err("cannot bench an empty oracle".into());
    }
    let seed_sets: Vec<Vec<NodeId>> = (0..batch_size)
        .map(|q| {
            (0..3usize)
                .map(|j| NodeId(((q * 7 + j * 11 + 1) % n) as u32))
                .collect()
        })
        .collect();
    let expected = reference.influence_many(&seed_sets, 1, None, None);

    let mut probe = connect()?;
    let served = probe.influence_many(oracle_idx, &seed_sets)?;
    if served.len() != expected.len()
        || served
            .iter()
            .zip(&expected)
            .any(|(s, e)| s.to_bits() != e.to_bits())
    {
        return Err("served answers are NOT bit-identical to in-process answers".into());
    }
    println!(
        "verified: {} served answers bit-identical to in-process influence_many_frozen",
        served.len()
    );
    drop(probe);

    // Timed run: every client connection answers `batches` frames; raw
    // per-frame latencies are collected for exact quantiles.
    let clock = MetricsRecorder::new();
    let t0 = clock.span_start();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(clients * batches);
    let lat_results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let seed_sets = &seed_sets;
                let clock = &clock;
                let connect = &connect;
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut client = connect().map_err(|e| e.to_string())?;
                    let mut lats = Vec::with_capacity(batches);
                    for _ in 0..batches {
                        let tq = clock.span_start();
                        let got = client
                            .influence_many(oracle_idx, seed_sets)
                            .map_err(|e| e.to_string())?;
                        lats.push(tq.elapsed_ns().unwrap_or(0));
                        if got.len() != seed_sets.len() {
                            return Err("short response".into());
                        }
                    }
                    Ok(lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let wall_ns = t0.elapsed_ns().unwrap_or(1).max(1);
    for r in lat_results {
        all_latencies.extend(r.map_err(|e| -> Box<dyn Error> { e.into() })?);
    }
    all_latencies.sort_unstable();
    let frames = all_latencies.len() as u64;
    let queries = frames * seed_sets.len() as u64;
    let qps = queries as f64 * 1e9 / wall_ns as f64;
    println!(
        "{clients} client(s) × {batches} batches × {} queries/batch over {:.3} ms",
        seed_sets.len(),
        wall_ns as f64 / 1e6
    );
    println!(
        "throughput: {qps:.0} queries/s — per-frame latency: p50 {} ns, p99 {} ns, p999 {} ns",
        sample_quantile(&all_latencies, 0.50),
        sample_quantile(&all_latencies, 0.99),
        sample_quantile(&all_latencies, 0.999)
    );
    Ok(())
}

/// Usage text printed on `--help`, no command, or errors.
pub const USAGE: &str = "\
infprop — information propagation in interaction networks (EDBT 2017)

USAGE:
  infprop stats <file> [--units-per-day N]
  infprop irs <file> (--window-pct P | --window W) [--exact] [--beta B] [--top K]
  infprop topk <file> --k K (--window-pct P | --window W)
                 [--method irs|irs-exact|pagerank|hd|shd|degree-discount|skim|cte]
                 [--seed S] [--threads T] [--no-freeze]
                 [--metrics] [--metrics-out FILE] [--trace-out FILE]
  infprop simulate <file> --seeds a,b,c (--window-pct P | --window W)
                 [--p F] [--runs N] [--model tcic|tclt] [--seed S] [--threads T]
                 [--no-freeze] [--metrics] [--metrics-out FILE] [--trace-out FILE]
  infprop channel <file> --from U --to V (--window-pct P | --window W)
  infprop generate --profile enron|lkml|facebook|higgs|slashdot|us2016
                 --scale S --out FILE [--seed N]
  infprop build <file> (--window-pct P | --window W) --out FILE [--beta B | --exact]
                 [--frozen | --layered] [--metrics] [--metrics-out FILE]
                 [--trace-out FILE] (alias: oracle-build)
  infprop append <oracle-dir> <file> [--metrics] [--metrics-out FILE]
                 [--trace-out FILE]
  infprop compact <oracle-dir> [--metrics] [--metrics-out FILE] [--trace-out FILE]
  infprop oracle-query <oracle-path> (--seeds a,b,c | --queries FILE)
                 [--threads N] [--metrics] [--metrics-out FILE] [--trace-out FILE]
  infprop profile <oracle-path> [--queries FILE | --rounds N] [--k K]
                 [--threads N] [--slowest K] [--metrics] [--metrics-out FILE]
                 [--trace-out FILE]
  infprop serve <oracle-path>… (--socket PATH | --tcp ADDR) [--threads N]
                 [--metrics] [--metrics-out FILE] [--trace-out FILE]
  infprop bench-serve <oracle-path> (--socket PATH | --tcp ADDR) --clients N
                 [--batches B] [--batch-size Q] [--oracle I]

Input files are SNAP-style edge lists: `src dst time` per line, `#` comments.
`--metrics` prints a JSON metrics snapshot (counters, gauges, histograms,
span timings) for the run; `--metrics-out FILE` writes it to a file instead.
`--trace-out FILE` turns on the causal ring tracer and exports the run as
Chrome Trace Event JSON (open it at ui.perfetto.dev or chrome://tracing).

`build --layered` writes a layered oracle *directory* (frozen base arena +
forward-delta log + MANIFEST). `append` buffers new interactions (raw
numeric node ids in the oracle's id space, at or after the frontier) into
its pending log; `compact` expires interactions outside the window and
re-freezes the base (LSM-style, crash-safe: the previous generation stays
loadable until the new MANIFEST commits). `oracle-query` accepts both
single-file oracles and layered directories; `--queries FILE` answers one
comma-separated seed set per line through the batched frozen kernel
(`--threads N` fans the batch out; per-query p50/p99/p999/mean under
`--metrics`). `profile` traces unconditionally: it replays a query
workload (`--queries FILE`, or `--rounds N` synthesized queries), then
prints a per-phase self/total time attribution table and the `--slowest K`
traces by wall time from the flight recorder.

`serve` maps one or more oracle artefacts (zero-copy via mmap when built
with `--features mmap`) and answers influence/topk/summary requests over a
length-prefixed binary protocol on a Unix socket and/or TCP listener; one
INFLUENCE frame carries a whole batch of seed sets, answered through the
batched frozen kernel. `bench-serve` drives a running server: it asserts
the served answers bit-identical to in-process answers, then reports
queries/s and exact p50/p99/p999 per-frame latencies.
";

/// Dispatches a parsed command line.
pub fn dispatch(parsed: &ParsedArgs) -> CmdResult {
    match parsed.command.as_str() {
        "stats" => stats(parsed),
        "irs" => irs(parsed),
        "topk" => topk(parsed),
        "simulate" => simulate(parsed),
        "channel" => channel(parsed),
        "generate" => generate(parsed),
        "build" | "oracle-build" => oracle_build(parsed),
        "append" => append(parsed),
        "compact" => compact(parsed),
        "oracle-query" => oracle_query(parsed),
        "profile" => profile(parsed),
        "serve" => serve(parsed),
        "bench-serve" => bench_serve(parsed),
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    }
}
