//! Hand-rolled argument parsing (no external CLI dependency).
//!
//! Grammar: `infprop <command> [positional…] [--flag value…]`. Flags accept
//! `--flag value`; boolean flags take no value. Unknown flags and missing
//! required arguments produce descriptive errors that `main` prints with
//! the usage text.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: the subcommand name, positionals, and flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// Subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--flag value` pairs; boolean flags map to `"true"`.
    pub flags: HashMap<String, String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    NoCommand,
    /// A required flag is missing.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Wrong number of positional arguments.
    Positional(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::NoCommand => write!(f, "no command given"),
            ArgError::MissingFlag(flag) => write!(f, "missing required flag --{flag}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag}: expected {expected}, got {value:?}")
            }
            ArgError::Positional(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["exact", "frozen", "help", "layered", "metrics", "no-freeze"];

/// Splits raw arguments (without the program name) into a [`ParsedArgs`].
pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgError> {
    let mut it = args.iter();
    let command = it.next().ok_or(ArgError::NoCommand)?.clone();
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let token = rest[i];
        if let Some(name) = token.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                flags.insert(name.to_owned(), "true".to_owned());
                i += 1;
            } else {
                let value = rest.get(i + 1).ok_or_else(|| ArgError::BadValue {
                    flag: name.to_owned(),
                    value: "<nothing>".to_owned(),
                    expected: "a value",
                })?;
                flags.insert(name.to_owned(), (*value).clone());
                i += 2;
            }
        } else {
            positional.push(token.clone());
            i += 1;
        }
    }
    Ok(ParsedArgs {
        command,
        positional,
        flags,
    })
}

impl ParsedArgs {
    /// One required positional argument (e.g. an input path).
    pub fn one_positional(&self, what: &'static str) -> Result<&str, ArgError> {
        match self.positional.as_slice() {
            [only] => Ok(only),
            _ => Err(ArgError::Positional(what)),
        }
    }

    /// Two required positional arguments (e.g. a directory and a file).
    pub fn two_positional(&self, what: &'static str) -> Result<(&str, &str), ArgError> {
        match self.positional.as_slice() {
            [first, second] => Ok((first, second)),
            _ => Err(ArgError::Positional(what)),
        }
    }

    /// A required string flag.
    pub fn required(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.flags
            .get(flag)
            .map(String::as_str)
            .ok_or(ArgError::MissingFlag(flag))
    }

    /// An optional string flag.
    pub fn optional(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A boolean flag (present = true).
    pub fn boolean(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// A parsed numeric flag with a default.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_owned(),
                value: raw.clone(),
                expected,
            }),
        }
    }

    /// A required parsed numeric flag.
    pub fn parse_required<T: std::str::FromStr>(
        &self,
        flag: &'static str,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        let raw = self.required(flag)?;
        raw.parse().map_err(|_| ArgError::BadValue {
            flag: flag.to_owned(),
            value: raw.to_owned(),
            expected,
        })
    }

    /// A comma-separated list of node ids (`--seeds 1,2,3`).
    pub fn node_list(&self, flag: &'static str) -> Result<Vec<u32>, ArgError> {
        let raw = self.required(flag)?;
        raw.split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim().parse().map_err(|_| ArgError::BadValue {
                    flag: flag.to_owned(),
                    value: s.to_owned(),
                    expected: "a comma-separated list of node ids",
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_positional_and_flags() {
        let p = parse(&args(&["topk", "net.txt", "--k", "10", "--method", "irs"])).unwrap();
        assert_eq!(p.command, "topk");
        assert_eq!(p.positional, vec!["net.txt"]);
        assert_eq!(p.required("k").unwrap(), "10");
        assert_eq!(p.parse_or("k", 0usize, "int").unwrap(), 10);
        assert_eq!(p.optional("method"), Some("irs"));
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let p = parse(&args(&[
            "irs",
            "net.txt",
            "--exact",
            "--frozen",
            "--window-pct",
            "5",
        ]))
        .unwrap();
        assert!(p.boolean("exact"));
        assert!(p.boolean("frozen"));
        assert_eq!(p.required("window-pct").unwrap(), "5");
        assert_eq!(p.positional, vec!["net.txt"]);
    }

    #[test]
    fn empty_input_is_no_command() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::NoCommand);
    }

    #[test]
    fn flag_without_value_errors() {
        let err = parse(&args(&["stats", "--units-per-day"])).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
    }

    #[test]
    fn missing_required_flag() {
        let p = parse(&args(&["topk", "net.txt"])).unwrap();
        assert_eq!(p.required("k").unwrap_err(), ArgError::MissingFlag("k"));
        assert!(p.required("k").unwrap_err().to_string().contains("--k"));
    }

    #[test]
    fn bad_numeric_value() {
        let p = parse(&args(&["topk", "net.txt", "--k", "ten"])).unwrap();
        let err = p.parse_required::<usize>("k", "an integer").unwrap_err();
        assert!(err.to_string().contains("expected an integer"));
    }

    #[test]
    fn node_list_parses_and_rejects() {
        let p = parse(&args(&["simulate", "n.txt", "--seeds", "1,2, 3"])).unwrap();
        assert_eq!(p.node_list("seeds").unwrap(), vec![1, 2, 3]);
        let bad = parse(&args(&["simulate", "n.txt", "--seeds", "1,x"])).unwrap();
        assert!(bad.node_list("seeds").is_err());
    }

    #[test]
    fn one_positional_enforced() {
        let p = parse(&args(&["stats", "a.txt", "b.txt"])).unwrap();
        assert!(p.one_positional("expected exactly one input path").is_err());
        let ok = parse(&args(&["stats", "a.txt"])).unwrap();
        assert_eq!(ok.one_positional("x").unwrap(), "a.txt");
    }

    #[test]
    fn parse_or_defaults() {
        let p = parse(&args(&["stats", "a.txt"])).unwrap();
        assert_eq!(p.parse_or("runs", 100usize, "int").unwrap(), 100);
    }
}
