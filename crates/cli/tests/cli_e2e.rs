//! End-to-end tests driving the compiled `infprop` binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_infprop"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("infprop-cli-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes a small deterministic network and returns its path.
fn sample_network(dir: &Path) -> String {
    let path = dir.join("net.txt");
    let mut text = String::from("# test network\n");
    for i in 0..200u32 {
        let src = i % 17;
        let dst = (i * 5 + 1) % 17;
        if src != dst {
            text.push_str(&format!("{src} {dst} {i}\n"));
        }
    }
    std::fs::write(&path, text).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn help_prints_usage() {
    let out = run(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn no_command_fails_with_usage() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn stats_reports_counts() {
    let dir = tempdir("stats");
    let net = sample_network(&dir);
    let out = run(&["stats", &net, "--units-per-day", "1"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("|V|"), "{text}");
    assert!(text.contains("distinct timestamps: true"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn irs_exact_and_approx_agree_on_top_node() {
    let dir = tempdir("irs");
    let net = sample_network(&dir);
    let exact = run(&["irs", &net, "--window-pct", "50", "--exact", "--top", "1"]);
    let approx = run(&[
        "irs",
        &net,
        "--window-pct",
        "50",
        "--top",
        "1",
        "--beta",
        "4096",
    ]);
    assert!(exact.status.success() && approx.status.success());
    let top_exact = stdout(&exact)
        .lines()
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .to_owned();
    let top_approx = stdout(&approx)
        .lines()
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .to_owned();
    assert_eq!(top_exact, top_approx);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn topk_all_methods_run() {
    let dir = tempdir("topk");
    let net = sample_network(&dir);
    for method in [
        "irs",
        "irs-exact",
        "pagerank",
        "hd",
        "shd",
        "degree-discount",
        "skim",
        "cte",
    ] {
        let out = run(&[
            "topk",
            &net,
            "--k",
            "3",
            "--window-pct",
            "20",
            "--method",
            method,
        ]);
        assert!(out.status.success(), "{method}: {}", stderr(&out));
        assert_eq!(stdout(&out).lines().count(), 3, "{method}");
    }
    let bad = run(&[
        "topk",
        &net,
        "--k",
        "3",
        "--window-pct",
        "20",
        "--method",
        "nope",
    ]);
    assert!(!bad.status.success());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn simulate_both_models() {
    let dir = tempdir("sim");
    let net = sample_network(&dir);
    for model in ["tcic", "tclt"] {
        let out = run(&[
            "simulate",
            &net,
            "--seeds",
            "0,1",
            "--window-pct",
            "20",
            "--runs",
            "20",
            "--model",
            model,
        ]);
        assert!(out.status.success(), "{model}: {}", stderr(&out));
        assert!(stdout(&out).contains("spread"));
    }
    // Out-of-range seed is rejected.
    let bad = run(&["simulate", &net, "--seeds", "9999", "--window-pct", "20"]);
    assert!(!bad.status.success());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn generate_then_full_pipeline() {
    let dir = tempdir("gen");
    let net_path = dir.join("gen.txt").to_string_lossy().into_owned();
    let out = run(&[
        "generate",
        "--profile",
        "slashdot",
        "--scale",
        "0.001",
        "--seed",
        "5",
        "--out",
        &net_path,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(std::fs::metadata(&net_path).unwrap().len() > 0);

    let oracle_path = dir.join("oracle.bin").to_string_lossy().into_owned();
    let built = run(&[
        "oracle-build",
        &net_path,
        "--window-pct",
        "10",
        "--out",
        &oracle_path,
    ]);
    assert!(built.status.success(), "{}", stderr(&built));

    let query = run(&["oracle-query", &oracle_path, "--seeds", "0,1,2"]);
    assert!(query.status.success(), "{}", stderr(&query));
    assert!(stdout(&query).contains("Inf(S)"));

    // Reading the oracle as a network must fail cleanly.
    let confused = run(&["stats", &oracle_path]);
    assert!(!confused.status.success());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn channel_found_and_not_found() {
    let dir = tempdir("chan");
    let path = dir.join("chain.txt");
    std::fs::write(&path, "a b 1\nb c 2\nc d 3\n").unwrap();
    let p = path.to_string_lossy().into_owned();
    let found = run(&["channel", &p, "--from", "0", "--to", "3", "--window", "5"]);
    assert!(found.status.success(), "{}", stderr(&found));
    assert!(stdout(&found).contains("3 hops"), "{}", stdout(&found));
    let missing = run(&["channel", &p, "--from", "3", "--to", "0", "--window", "5"]);
    assert!(stdout(&missing).contains("no information channel"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn absolute_window_flag_works() {
    let dir = tempdir("absw");
    let net = sample_network(&dir);
    let out = run(&["irs", &net, "--window", "25", "--exact", "--top", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("window = 25 time units"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn exact_oracle_roundtrip_via_cli() {
    let dir = tempdir("exact-oracle");
    let net = sample_network(&dir);
    let oracle_path = dir.join("exact.bin").to_string_lossy().into_owned();
    let built = run(&[
        "oracle-build",
        &net,
        "--window-pct",
        "30",
        "--exact",
        "--out",
        &oracle_path,
    ]);
    assert!(built.status.success(), "{}", stderr(&built));
    assert!(stdout(&built).contains("exact summaries"));

    let query = run(&["oracle-query", &oracle_path, "--seeds", "0,1"]);
    assert!(query.status.success(), "{}", stderr(&query));
    assert!(stdout(&query).contains("Inf(S)"));

    // Out-of-range seed fails cleanly, not with a panic.
    let bad = run(&["oracle-query", &oracle_path, "--seeds", "100000"]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("inside the oracle"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn invalid_beta_rejected_everywhere() {
    let dir = tempdir("beta");
    let net = sample_network(&dir);
    for cmd in [
        vec!["irs", net.as_str(), "--window-pct", "10", "--beta", "100"],
        vec![
            "oracle-build",
            net.as_str(),
            "--window-pct",
            "10",
            "--beta",
            "0",
            "--out",
            "/dev/null",
        ],
    ] {
        let out = run(&cmd);
        assert!(!out.status.success(), "{cmd:?} should fail");
        assert!(stderr(&out).contains("power of two"), "{}", stderr(&out));
    }
    std::fs::remove_dir_all(dir).ok();
}

/// Extracts the integer following `"key": ` in a flat JSON snapshot.
fn json_u64(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing in {text}"));
    text[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn build_metrics_snapshot_has_live_counters() {
    let dir = tempdir("build-metrics");
    let net = sample_network(&dir);
    let oracle_path = dir.join("o.bin").to_string_lossy().into_owned();
    // `build` is the documented name; `oracle-build` stays as an alias.
    let out = run(&[
        "build",
        &net,
        "--window-pct",
        "30",
        "--out",
        &oracle_path,
        "--metrics",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""] {
        assert!(text.contains(section), "missing {section}: {text}");
    }
    assert!(json_u64(&text, "engine.interactions") > 0, "{text}");
    assert!(json_u64(&text, "vhll.merge_calls") > 0, "{text}");
    assert!(json_u64(&text, "oracle.queries") > 0, "{text}");
    assert!(json_u64(&text, "store.heap_bytes") > 0, "{text}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn build_metrics_out_writes_file_and_exact_counters() {
    let dir = tempdir("build-metrics-out");
    let net = sample_network(&dir);
    let oracle_path = dir.join("o.bin").to_string_lossy().into_owned();
    let snap_path = dir.join("metrics.json").to_string_lossy().into_owned();
    let out = run(&[
        "build",
        &net,
        "--window-pct",
        "30",
        "--exact",
        "--out",
        &oracle_path,
        "--metrics-out",
        &snap_path,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&snap_path).unwrap();
    assert!(json_u64(&text, "engine.interactions") > 0, "{text}");
    assert!(json_u64(&text, "exact.merge_calls") > 0, "{text}");
    assert!(json_u64(&text, "oracle.queries") > 0, "{text}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn metrics_flag_does_not_change_topk_output() {
    let dir = tempdir("topk-metrics");
    let net = sample_network(&dir);
    let base = &[
        "topk",
        &net,
        "--k",
        "3",
        "--window-pct",
        "20",
        "--threads",
        "1",
    ];
    let plain = run(base);
    let mut with_metrics: Vec<&str> = base.to_vec();
    with_metrics.push("--metrics");
    let recorded = run(&with_metrics);
    assert!(plain.status.success() && recorded.status.success());
    let recorded_text = stdout(&recorded);
    // Seed picks are identical; the recorded run appends the snapshot.
    assert!(
        recorded_text.starts_with(&stdout(&plain)),
        "{recorded_text}"
    );
    assert!(
        json_u64(&recorded_text, "greedy.rounds") >= 3,
        "{recorded_text}"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn simulate_metrics_reports_sim_and_oracle() {
    let dir = tempdir("sim-metrics");
    let net = sample_network(&dir);
    let out = run(&[
        "simulate",
        &net,
        "--seeds",
        "0,1",
        "--window-pct",
        "20",
        "--runs",
        "10",
        "--metrics",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("oracle estimate Inf(S)"), "{text}");
    assert_eq!(json_u64(&text, "sim.runs"), 10, "{text}");
    assert!(json_u64(&text, "oracle.queries") > 0, "{text}");
    std::fs::remove_dir_all(dir).ok();
}

/// Extracts the `Inf(...) = X` value from an `oracle-query` stdout line.
fn influence_of(text: &str) -> f64 {
    text.lines()
        .find_map(|l| l.split(" = ").nth(1))
        .unwrap_or_else(|| panic!("no influence line in {text}"))
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn layered_build_append_compact_roundtrip() {
    let dir = tempdir("layered");
    let net = sample_network(&dir);
    let oracle_dir = dir.join("layered-oracle").to_string_lossy().into_owned();

    let built = run(&[
        "build",
        &net,
        "--window",
        "60",
        "--exact",
        "--layered",
        "--out",
        &oracle_dir,
    ]);
    assert!(built.status.success(), "{}", stderr(&built));
    assert!(stdout(&built).contains("layered exact oracle (generation 0)"));
    assert!(Path::new(&oracle_dir).join("MANIFEST").is_file());

    // Baseline answer over the base alone.
    let q0 = run(&["oracle-query", &oracle_dir, "--seeds", "0,1"]);
    assert!(q0.status.success(), "{}", stderr(&q0));
    let base_inf = influence_of(&stdout(&q0));

    // Forward-append a batch that extends node 0's reach (raw ids).
    let batch = dir.join("batch.txt");
    std::fs::write(&batch, "# forward batch\n0 5 200\n5 9 201\n9 12 202\n").unwrap();
    let appended = run(&["append", &oracle_dir, &batch.to_string_lossy()]);
    assert!(appended.status.success(), "{}", stderr(&appended));
    assert!(
        stdout(&appended).contains("appended 3 interactions"),
        "{}",
        stdout(&appended)
    );

    let q1 = run(&["oracle-query", &oracle_dir, "--seeds", "0,1"]);
    assert!(q1.status.success(), "{}", stderr(&q1));
    let layered_inf = influence_of(&stdout(&q1));
    assert!(
        layered_inf >= base_inf,
        "appends cannot shrink influence: {layered_inf} < {base_inf}"
    );

    // Compaction re-freezes; answers over the surviving window still work
    // and the generation advances.
    let compacted = run(&["compact", &oracle_dir, "--metrics"]);
    assert!(compacted.status.success(), "{}", stderr(&compacted));
    let ctext = stdout(&compacted);
    assert!(ctext.contains("generation 1"), "{ctext}");
    assert!(json_u64(&ctext, "compaction.runs") == 1, "{ctext}");
    assert!(
        ctext.contains("\"compaction.input_interactions\": {\"count\": 1"),
        "{ctext}"
    );

    let q2 = run(&["oracle-query", &oracle_dir, "--seeds", "0,1", "--metrics"]);
    assert!(q2.status.success(), "{}", stderr(&q2));
    let qtext = stdout(&q2);
    assert!(
        qtext.contains("format: layered exact oracle directory (generation 1, 0 pending)"),
        "{qtext}"
    );
    assert!(qtext.contains("\"oracle.load\": {\"count\": 1"), "{qtext}");

    // Stale (behind-frontier) appends are rejected without corrupting state.
    let stale = dir.join("stale.txt");
    std::fs::write(&stale, "0 1 5\n").unwrap();
    let rejected = run(&["append", &oracle_dir, &stale.to_string_lossy()]);
    assert!(!rejected.status.success());
    assert!(
        stderr(&rejected).contains("frontier"),
        "{}",
        stderr(&rejected)
    );
    let q3 = run(&["oracle-query", &oracle_dir, "--seeds", "0,1"]);
    assert!(q3.status.success(), "{}", stderr(&q3));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn layered_sketch_oracle_and_query_batches() {
    let dir = tempdir("layered-approx");
    let net = sample_network(&dir);
    let oracle_dir = dir.join("sketch-oracle").to_string_lossy().into_owned();

    let built = run(&[
        "build",
        &net,
        "--window",
        "60",
        "--layered",
        "--beta",
        "256",
        "--out",
        &oracle_dir,
    ]);
    assert!(built.status.success(), "{}", stderr(&built));
    assert!(stdout(&built).contains("layered sketch oracle (generation 0)"));

    // Batch queries: one seed set per line, comments skipped.
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "# batch\n0\n0,1\n3,4,5\n").unwrap();
    let out = run(&[
        "oracle-query",
        &oracle_dir,
        "--queries",
        &queries.to_string_lossy(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 3, "{text}");
    assert!(text.contains("Inf(0,1) = "), "{text}");

    // Appends flow through the sketch path too.
    let batch = dir.join("batch.txt");
    std::fs::write(&batch, "1 2 300\n").unwrap();
    let appended = run(&["append", &oracle_dir, &batch.to_string_lossy()]);
    assert!(appended.status.success(), "{}", stderr(&appended));

    // Out-of-range seeds still fail cleanly against a directory oracle.
    let bad = run(&["oracle-query", &oracle_dir, "--seeds", "100000"]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("inside the oracle"));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn no_freeze_matches_frozen_answers() {
    let dir = tempdir("no-freeze");
    let net = sample_network(&dir);
    let base = &[
        "topk",
        &net,
        "--k",
        "3",
        "--window-pct",
        "20",
        "--threads",
        "1",
    ];
    let frozen = run(base);
    let mut live: Vec<&str> = base.to_vec();
    live.push("--no-freeze");
    let live_out = run(&live);
    assert!(frozen.status.success() && live_out.status.success());
    assert_eq!(stdout(&frozen), stdout(&live_out));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn stats_reports_shape_metrics() {
    let dir = tempdir("shape-stats");
    let net = sample_network(&dir);
    let out = run(&["stats", &net, "--units-per-day", "1"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for needle in ["out-degree", "gini", "contact repetition", "burstiness"] {
        assert!(text.contains(needle), "missing {needle}: {text}");
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn batch_queries_match_sequential_and_report_latency() {
    let dir = tempdir("batch-queries");
    let net = sample_network(&dir);
    let oracle_path = dir.join("frozen.ipfa").to_string_lossy().into_owned();
    let built = run(&[
        "build",
        &net,
        "--window",
        "60",
        "--frozen",
        "--beta",
        "256",
        "--out",
        &oracle_path,
    ]);
    assert!(built.status.success(), "{}", stderr(&built));

    // One seed set per line: empty set rows are impossible (blank lines are
    // comments), but duplicates, singletons, and wide unions all appear.
    let seed_lines = ["0", "0,1", "1,1,2", "3,4,5,6,7", "12,0,8"];
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, format!("# parity\n{}\n", seed_lines.join("\n"))).unwrap();

    // The batch path (whole file in one influence_many call, fanned out)
    // must print exactly what one oracle-query process per line prints.
    for threads in ["1", "2", "8"] {
        let batch = run(&[
            "oracle-query",
            &oracle_path,
            "--queries",
            &queries.to_string_lossy(),
            "--threads",
            threads,
        ]);
        assert!(batch.status.success(), "{}", stderr(&batch));
        let batch_lines: Vec<String> = stdout(&batch).lines().map(String::from).collect();
        assert_eq!(batch_lines.len(), seed_lines.len(), "{batch_lines:?}");
        for (line, got) in seed_lines.iter().zip(&batch_lines) {
            let sequential = run(&["oracle-query", &oracle_path, "--seeds", line]);
            assert!(sequential.status.success(), "{}", stderr(&sequential));
            let want = stdout(&sequential);
            assert_eq!(
                want.trim(),
                got.replace(&format!("Inf({line})"), "Inf(S)").trim()
            );
        }
    }

    // Under --metrics the batch reports per-query latency quantiles from
    // the kernel.query_ns histogram and the kernel.* batch counters.
    let metered = run(&[
        "oracle-query",
        &oracle_path,
        "--queries",
        &queries.to_string_lossy(),
        "--metrics",
    ]);
    assert!(metered.status.success(), "{}", stderr(&metered));
    let text = stdout(&metered);
    assert!(text.contains("per-query latency: p50 "), "{text}");
    // The tail of the latency report: p999 and the histogram mean ride
    // along with the p50/p99 quantiles.
    assert!(text.contains(" p999 "), "{text}");
    assert!(text.contains(" mean "), "{text}");
    assert_eq!(json_u64(&text, "kernel.batch_queries"), 5, "{text}");
    assert!(json_u64(&text, "kernel.merge_rows") > 0, "{text}");
    assert!(text.contains("\"kernel.query_ns\""), "{text}");
    std::fs::remove_dir_all(dir).ok();
}

/// Structural sanity check on an exported Chrome trace file: a JSON array
/// of complete begin/end pairs (plus instants) that names `needle`.
fn assert_trace_file(path: &Path, needle: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|_| panic!("trace file {} missing", path.display()));
    assert!(
        text.trim_start().starts_with('['),
        "not a JSON array: {text}"
    );
    assert!(text.trim_end().ends_with(']'), "unterminated array: {text}");
    assert_eq!(
        text.matches("\"ph\":\"B\"").count(),
        text.matches("\"ph\":\"E\"").count(),
        "unbalanced begin/end events: {text}"
    );
    assert!(
        text.contains(&format!("\"name\":\"{needle}\"")),
        "missing {needle} in {text}"
    );
}

#[test]
fn trace_out_does_not_change_primary_output() {
    let dir = tempdir("trace-parity");
    let net = sample_network(&dir);
    let oracle_path = dir.join("frozen.ipfa").to_string_lossy().into_owned();
    let built = run(&[
        "build",
        &net,
        "--window",
        "60",
        "--frozen",
        "--out",
        &oracle_path,
    ]);
    assert!(built.status.success(), "{}", stderr(&built));

    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "0\n0,1\n3,4,5\n").unwrap();
    let trace_path = dir.join("trace.json");
    let plain = run(&[
        "oracle-query",
        &oracle_path,
        "--queries",
        &queries.to_string_lossy(),
    ]);
    let traced = run(&[
        "oracle-query",
        &oracle_path,
        "--queries",
        &queries.to_string_lossy(),
        "--trace-out",
        &trace_path.to_string_lossy(),
    ]);
    assert!(plain.status.success() && traced.status.success());
    // Tracing adds exactly one trailing status line; the answers above it
    // are byte-identical to the untraced run.
    let traced_text = stdout(&traced);
    assert!(traced_text.starts_with(&stdout(&plain)), "{traced_text}");
    assert!(
        traced_text.contains("wrote Chrome trace to"),
        "{traced_text}"
    );
    assert_trace_file(&trace_path, "query.batch");
    assert_trace_file(&trace_path, "query.element");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn trace_out_works_on_every_traced_subcommand() {
    let dir = tempdir("trace-all");
    let net = sample_network(&dir);

    // build --frozen
    let frozen_path = dir.join("frozen.ipfa").to_string_lossy().into_owned();
    let t_build = dir.join("build.json");
    let built = run(&[
        "build",
        &net,
        "--window",
        "60",
        "--frozen",
        "--out",
        &frozen_path,
        "--trace-out",
        &t_build.to_string_lossy(),
    ]);
    assert!(built.status.success(), "{}", stderr(&built));
    assert_trace_file(&t_build, "build.reverse_scan");
    assert_trace_file(&t_build, "build.freeze");

    // build --layered, then append and compact against the directory.
    let oracle_dir = dir.join("layered").to_string_lossy().into_owned();
    let t_layered = dir.join("layered.json");
    let layered = run(&[
        "build",
        &net,
        "--window",
        "60",
        "--exact",
        "--layered",
        "--out",
        &oracle_dir,
        "--trace-out",
        &t_layered.to_string_lossy(),
    ]);
    assert!(layered.status.success(), "{}", stderr(&layered));
    assert_trace_file(&t_layered, "build.reverse_scan");

    let batch = dir.join("batch.txt");
    std::fs::write(&batch, "0 5 200\n5 9 201\n").unwrap();
    let t_append = dir.join("append.json");
    let appended = run(&[
        "append",
        &oracle_dir,
        &batch.to_string_lossy(),
        "--trace-out",
        &t_append.to_string_lossy(),
    ]);
    assert!(appended.status.success(), "{}", stderr(&appended));
    assert_trace_file(&t_append, "append.batch");

    let t_compact = dir.join("compact.json");
    let compacted = run(&[
        "compact",
        &oracle_dir,
        "--trace-out",
        &t_compact.to_string_lossy(),
    ]);
    assert!(compacted.status.success(), "{}", stderr(&compacted));
    assert_trace_file(&t_compact, "compact.run");
    assert_trace_file(&t_compact, "compact.rebuild");

    // oracle-query --seeds against the compacted directory.
    let t_query = dir.join("query.json");
    let queried = run(&[
        "oracle-query",
        &oracle_dir,
        "--seeds",
        "0,1",
        "--trace-out",
        &t_query.to_string_lossy(),
    ]);
    assert!(queried.status.success(), "{}", stderr(&queried));
    assert_trace_file(&t_query, "load.oracle");
    assert_trace_file(&t_query, "query.batch");

    // topk and simulate trace their build and run phases.
    let t_topk = dir.join("topk.json");
    let topk = run(&[
        "topk",
        &net,
        "--k",
        "2",
        "--window-pct",
        "20",
        "--threads",
        "1",
        "--trace-out",
        &t_topk.to_string_lossy(),
    ]);
    assert!(topk.status.success(), "{}", stderr(&topk));
    assert_trace_file(&t_topk, "build.reverse_scan");
    assert_trace_file(&t_topk, "greedy.selection");

    let t_sim = dir.join("sim.json");
    let sim = run(&[
        "simulate",
        &net,
        "--seeds",
        "0,1",
        "--window-pct",
        "20",
        "--runs",
        "5",
        "--trace-out",
        &t_sim.to_string_lossy(),
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    assert_trace_file(&t_sim, "simulate.run");

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn profile_reports_attribution_and_slowest_traces() {
    let dir = tempdir("profile");
    let net = sample_network(&dir);
    let oracle_path = dir.join("frozen.ipfa").to_string_lossy().into_owned();
    let built = run(&[
        "build",
        &net,
        "--window",
        "60",
        "--frozen",
        "--out",
        &oracle_path,
    ]);
    assert!(built.status.success(), "{}", stderr(&built));

    let trace_path = dir.join("profile.json");
    let out = run(&[
        "profile",
        &oracle_path,
        "--rounds",
        "16",
        "--k",
        "2",
        "--threads",
        "1",
        "--slowest",
        "4",
        "--trace-out",
        &trace_path.to_string_lossy(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("format: IPFA frozen register arena"),
        "{text}"
    );
    assert!(text.contains("answered 16 queries"), "{text}");
    assert!(text.contains("greedy top-2: ["), "{text}");
    assert!(text.contains("phase attribution"), "{text}");
    for event in ["profile.run", "load.oracle", "query.batch", "query.element"] {
        assert!(
            text.contains(event),
            "missing {event} in attribution: {text}"
        );
    }
    assert!(text.contains("slowest 4 traces by wall time:"), "{text}");
    assert_trace_file(&trace_path, "profile.run");
    assert_trace_file(&trace_path, "query.element");

    // A query workload file drives the same pipeline.
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "0\n1,2\n").unwrap();
    let from_file = run(&[
        "profile",
        &oracle_path,
        "--queries",
        &queries.to_string_lossy(),
    ]);
    assert!(from_file.status.success(), "{}", stderr(&from_file));
    assert!(stdout(&from_file).contains("answered 2 queries"));

    // Out-of-range workload ids fail cleanly.
    let bad_q = dir.join("bad.txt");
    std::fs::write(&bad_q, "999999\n").unwrap();
    let bad = run(&[
        "profile",
        &oracle_path,
        "--queries",
        &bad_q.to_string_lossy(),
    ]);
    assert!(!bad.status.success());
    assert!(
        stderr(&bad).contains("inside the oracle"),
        "{}",
        stderr(&bad)
    );

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn serve_answers_byte_exact_and_drains_cleanly() {
    use infprop_core::serve::Client;
    use infprop_core::{FrozenExactOracle, InfluenceOracle};
    use infprop_temporal_graph::NodeId;
    use std::time::Duration;

    let dir = tempdir("serve");
    let net = sample_network(&dir);
    let oracle_path = dir.join("oracle.ipfe").to_string_lossy().into_owned();
    let built = run(&[
        "build",
        &net,
        "--window",
        "60",
        "--exact",
        "--frozen",
        "--out",
        &oracle_path,
    ]);
    assert!(built.status.success(), "{}", stderr(&built));

    // The in-process reference every served answer must match bit-for-bit.
    let reference = FrozenExactOracle::load(Path::new(&oracle_path)).unwrap();
    let n = reference.num_nodes() as u32;
    let seed_sets: Vec<Vec<NodeId>> = vec![
        vec![NodeId(0)],
        vec![NodeId(1 % n), NodeId(5 % n)],
        vec![NodeId(2 % n), NodeId(3 % n), NodeId(7 % n)],
        vec![],
    ];
    let expected = reference.influence_many_frozen(&seed_sets, 1);

    let sock = dir.join("serve.sock");
    let mut child = bin()
        .args([
            "serve",
            &oracle_path,
            "--socket",
            &sock.to_string_lossy(),
            "--threads",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");

    // Wait for the listener, then batch queries through it.
    let mut client = None;
    for _ in 0..400 {
        match Client::connect_unix(&sock) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut client = client.expect("server socket never came up");
    let got = client.influence_many(0, &seed_sets).unwrap();
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        assert_eq!(g.to_bits(), e.to_bits(), "served answer diverged");
    }
    let summary = client.summary(0, NodeId(0)).unwrap();
    assert_eq!(
        summary.individual.to_bits(),
        reference.individual(NodeId(0)).to_bits()
    );
    assert_eq!(
        summary.entries.as_deref().unwrap(),
        &reference.summary(NodeId(0)).to_vec()[..]
    );

    // Dropping a connection (clean EOF) must not take the server down.
    drop(client);
    let mut second = Client::connect_unix(&sock).expect("server survives client EOF");
    let again = second.influence_many(0, &seed_sets).unwrap();
    for (g, e) in again.iter().zip(&expected) {
        assert_eq!(g.to_bits(), e.to_bits());
    }

    // bench-serve drives the same server and asserts bit-identity itself.
    let bench = run(&[
        "bench-serve",
        &oracle_path,
        "--socket",
        &sock.to_string_lossy(),
        "--clients",
        "2",
        "--batches",
        "3",
        "--batch-size",
        "4",
    ]);
    assert!(bench.status.success(), "{}", stderr(&bench));
    let bench_text = stdout(&bench);
    assert!(bench_text.contains("bit-identical"), "{bench_text}");
    assert!(bench_text.contains("throughput:"), "{bench_text}");

    // A SHUTDOWN frame drains the server and the process exits cleanly.
    second.shutdown().unwrap();
    let mut status = None;
    for _ in 0..400 {
        if let Some(s) = child.try_wait().unwrap() {
            status = Some(s);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let status = match status {
        Some(s) => s,
        None => {
            let _ = child.kill();
            panic!("serve did not exit after SHUTDOWN");
        }
    };
    assert!(status.success(), "serve exited non-zero");
    let mut out = String::new();
    use std::io::Read as _;
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut out)
        .unwrap();
    assert!(out.contains("load latency:"), "{out}");
    assert!(out.contains("server drained"), "{out}");
    assert!(!sock.exists(), "socket file not cleaned up");

    std::fs::remove_dir_all(dir).ok();
}
