//! DegreeDiscount (Chen, Wang & Yang, KDD 2009) — the classic cheap
//! heuristic the paper cites among prior static-graph improvements.
//!
//! Under the Independent Cascade model with uniform probability `p`, a
//! node's value as a seed shrinks when some of its neighbours are already
//! seeds (they may infect it anyway). DegreeDiscount greedily picks the
//! node with the largest *discounted degree*
//!
//! ```text
//! dd(v) = d(v) − 2·t(v) − (d(v) − t(v)) · t(v) · p
//! ```
//!
//! where `t(v)` counts already-selected in-neighbours of `v`.
//!
//! Directed adaptation (documented deviation from the undirected original):
//! `d(v)` is the static out-degree (outgoing influence), and selecting a
//! seed `s` increments `t(v)` for every out-neighbour `v` of `s` — the
//! nodes whose audience `s` already covers.

use infprop_temporal_graph::{NodeId, StaticGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap key with deterministic tie-breaking on node id.
#[derive(PartialEq)]
struct Cand(f64, Reverse<u32>, u64);
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
            .then_with(|| self.2.cmp(&other.2))
    }
}

/// Selects up to `k` seeds by discounted degree under IC probability `p`.
///
/// # Panics
///
/// Panics unless `p ∈ [0, 1]`.
pub fn degree_discount(graph: &StaticGraph, k: usize, p: f64) -> Vec<NodeId> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    let n = graph.num_nodes();
    let mut t = vec![0u32; n]; // selected in-neighbour counts
    let mut selected = vec![false; n];
    let mut version = vec![0u64; n]; // lazy-invalidate stale heap entries
    let dd = |d: f64, t: u32| d - 2.0 * t as f64 - (d - t as f64) * t as f64 * p;

    let mut heap: BinaryHeap<(Cand, u32)> = (0..n as u32)
        .map(|v| {
            let d = graph.out_degree(NodeId(v)) as f64;
            (Cand(dd(d, 0), Reverse(v), 0), v)
        })
        .collect();

    let mut picks = Vec::with_capacity(k.min(n));
    while picks.len() < k {
        let Some((Cand(score, _, stamp), v)) = heap.pop() else {
            break;
        };
        let vi = v as usize;
        if selected[vi] || stamp != version[vi] {
            continue;
        }
        if score <= 0.0 && picks.len() >= graph.num_nodes().min(k) {
            break;
        }
        selected[vi] = true;
        picks.push(NodeId(v));
        // Discount every out-neighbour of the new seed.
        for &w in graph.neighbors(NodeId(v)) {
            let wi = w.index();
            if selected[wi] {
                continue;
            }
            t[wi] += 1;
            version[wi] += 1;
            let d = graph.out_degree(w) as f64;
            heap.push((Cand(dd(d, t[wi]), Reverse(w.0), version[wi]), w.0));
        }
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::InteractionNetwork;

    fn graph(pairs: &[(u32, u32)]) -> StaticGraph {
        InteractionNetwork::from_triples(
            pairs
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| (s, d, i as i64)),
        )
        .to_static()
    }

    #[test]
    fn first_pick_is_max_degree() {
        let g = graph(&[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let picks = degree_discount(&g, 1, 0.1);
        assert_eq!(picks, vec![NodeId(0)]);
    }

    #[test]
    fn discount_steers_away_from_covered_audience() {
        // Hub 0 -> {1,2,3}. Node 1 -> {2,3} (audience covered by 0);
        // node 4 -> {5,6} (fresh audience). After 0, DegreeDiscount must
        // prefer 4 over 1.
        let g = graph(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (4, 5), (4, 6)]);
        let picks = degree_discount(&g, 2, 0.5);
        assert_eq!(picks[0], NodeId(0));
        assert_eq!(picks[1], NodeId(4), "picks {picks:?}");
    }

    #[test]
    fn zero_probability_reduces_to_degree_with_overlap_penalty() {
        let g = graph(&[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let picks = degree_discount(&g, 3, 0.0);
        assert_eq!(picks[0], NodeId(0));
        assert!(picks.contains(&NodeId(3)));
    }

    #[test]
    fn no_duplicates_and_k_bounded() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)]);
        let picks = degree_discount(&g, 10, 0.3);
        let mut d = picks.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), picks.len());
        assert!(picks.len() <= 3);
    }

    #[test]
    fn empty_graph() {
        let g = StaticGraph::from_edges(0, std::iter::empty());
        assert!(degree_discount(&g, 3, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn bad_probability_panics() {
        let g = graph(&[(0, 1)]);
        let _ = degree_discount(&g, 1, 1.5);
    }
}
