//! Degree-based seed selection: High Degree and Smart High Degree.

use infprop_hll::hash::FastHashSet;
use infprop_temporal_graph::{NodeId, StaticGraph};

/// High Degree (HD): the `k` nodes with the largest static out-degree
/// (ties broken by node id). The classic baseline from Kempe et al.
pub fn high_degree(graph: &StaticGraph, k: usize) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..graph.num_nodes()).map(NodeId::from_index).collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(graph.out_degree(u)), u));
    order.truncate(k);
    order
}

/// Smart High Degree (SHD): the paper's overlap-aware variant — greedily
/// pick nodes maximizing the number of **distinct** out-neighbours covered
/// so far ("select a set of nodes that together have maximal outdegree").
///
/// This is exactly greedy maximum coverage over one-hop neighbourhoods, or
/// equivalently the IRS greedy with ω = 0 (only direct contacts count).
/// Selection stops early if every remaining node adds zero new coverage.
pub fn smart_high_degree(graph: &StaticGraph, k: usize) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut covered: FastHashSet<NodeId> = FastHashSet::default();
    let mut picked = vec![false; n];
    let mut result = Vec::with_capacity(k.min(n));
    // Lazy greedy: stale gains are upper bounds (coverage is submodular).
    let mut heap: std::collections::BinaryHeap<(usize, std::cmp::Reverse<NodeId>, usize)> = (0..n)
        .map(|i| {
            let u = NodeId::from_index(i);
            (graph.out_degree(u), std::cmp::Reverse(u), 0usize)
        })
        .collect();
    let mut round = 0usize;

    while result.len() < k {
        let Some((gain, std::cmp::Reverse(u), stamped)) = heap.pop() else {
            break;
        };
        if picked[u.index()] {
            continue;
        }
        if stamped == round {
            if gain == 0 {
                break;
            }
            picked[u.index()] = true;
            covered.extend(graph.neighbors(u).iter().copied());
            result.push(u);
            round += 1;
        } else {
            let fresh = graph
                .neighbors(u)
                .iter()
                .filter(|v| !covered.contains(v))
                .count();
            heap.push((fresh, std::cmp::Reverse(u), round));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::InteractionNetwork;

    fn graph(triples: &[(u32, u32)]) -> StaticGraph {
        InteractionNetwork::from_triples(
            triples
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| (s, d, i as i64)),
        )
        .to_static()
    }

    #[test]
    fn hd_picks_by_degree() {
        let g = graph(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(high_degree(&g, 2), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn hd_breaks_ties_by_id() {
        let g = graph(&[(2, 3), (1, 3), (0, 3)]);
        assert_eq!(high_degree(&g, 2), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn shd_avoids_overlap() {
        // 0 and 1 both cover {4,5,6}; 2 covers {7,8}. HD picks 0,1 (degree
        // 3,3) but SHD must pick 0 then 2.
        let g = graph(&[
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 4),
            (1, 5),
            (1, 6),
            (2, 7),
            (2, 8),
        ]);
        assert_eq!(high_degree(&g, 2), vec![NodeId(0), NodeId(1)]);
        assert_eq!(smart_high_degree(&g, 2), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn shd_stops_at_zero_gain() {
        let g = graph(&[(0, 1), (0, 2)]);
        // After node 0, every other node adds nothing.
        assert_eq!(smart_high_degree(&g, 5), vec![NodeId(0)]);
    }

    #[test]
    fn shd_first_pick_matches_hd() {
        let g = graph(&[(0, 1), (0, 2), (0, 3), (1, 2), (2, 0)]);
        assert_eq!(smart_high_degree(&g, 1), high_degree(&g, 1));
    }

    #[test]
    fn shd_covers_more_than_hd() {
        // Quantitative check on the overlap scenario.
        let g = graph(&[
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 4),
            (1, 5),
            (1, 6),
            (2, 7),
            (2, 8),
        ]);
        let coverage = |seeds: &[NodeId]| {
            let mut s: FastHashSet<NodeId> = FastHashSet::default();
            for &u in seeds {
                s.extend(g.neighbors(u).iter().copied());
            }
            s.len()
        };
        assert_eq!(coverage(&high_degree(&g, 2)), 3);
        assert_eq!(coverage(&smart_high_degree(&g, 2)), 5);
    }

    #[test]
    fn empty_graph_yields_empty() {
        let g = StaticGraph::from_edges(0, std::iter::empty());
        assert!(high_degree(&g, 3).is_empty());
        assert!(smart_high_degree(&g, 3).is_empty());
    }
}
