//! PageRank on the reversed static graph.
//!
//! The paper's setup (§6.5): "we used 0.15 as the restart probability and a
//! difference of 10⁻⁴ in the L1 norm between two successive iterations as
//! the stopping criterion", with edges reversed "as PageRank measures
//! incoming importance whereas we need outgoing influence".

use infprop_temporal_graph::{NodeId, StaticGraph};

/// PageRank parameters. Defaults match the paper.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Restart (teleport) probability, paper: 0.15.
    pub restart: f64,
    /// L1 convergence tolerance, paper: 1e-4.
    pub tolerance: f64,
    /// Iteration cap (safety net; the tolerance normally fires first).
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            restart: 0.15,
            tolerance: 1e-4,
            max_iterations: 200,
        }
    }
}

/// Computes PageRank scores **on the graph as given** (callers wanting the
/// paper's influence semantics pass the reversed graph; see
/// [`pagerank_top_k`]). Returns one score per node, summing to 1.
///
/// Dangling mass is redistributed uniformly, the standard convention.
pub fn pagerank(graph: &StaticGraph, config: &PageRankConfig) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    assert!(
        (0.0..1.0).contains(&config.restart),
        "restart probability must be in [0, 1)"
    );
    let damping = 1.0 - config.restart;
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    for _ in 0..config.max_iterations {
        next.fill(0.0);
        let mut dangling = 0.0f64;
        for (u, &r) in rank.iter().enumerate() {
            let node = NodeId::from_index(u);
            let out = graph.out_degree(node);
            if out == 0 {
                dangling += r;
            } else {
                let share = r / out as f64;
                for &v in graph.neighbors(node) {
                    next[v.index()] += share;
                }
            }
        }
        let base = config.restart * uniform + damping * dangling * uniform;
        let mut l1 = 0.0f64;
        for u in 0..n {
            let value = base + damping * next[u];
            l1 += (value - rank[u]).abs();
            rank[u] = value;
        }
        if l1 < config.tolerance {
            break;
        }
    }
    rank
}

/// The paper's PageRank baseline: scores on the **reversed** graph, top-k
/// nodes by score (ties broken by node id for determinism).
pub fn pagerank_top_k(graph: &StaticGraph, k: usize, config: &PageRankConfig) -> Vec<NodeId> {
    let scores = pagerank(&graph.transpose(), config);
    let mut order: Vec<NodeId> = (0..graph.num_nodes()).map(NodeId::from_index).collect();
    order.sort_by(|&a, &b| {
        scores[b.index()]
            .total_cmp(&scores[a.index()])
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::InteractionNetwork;

    fn graph(triples: &[(u32, u32)]) -> StaticGraph {
        InteractionNetwork::from_triples(
            triples
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| (s, d, i as i64)),
        )
        .to_static()
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = graph(&[(0, 1), (1, 2), (2, 0), (0, 2)]);
        let r = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn sink_attracts_rank() {
        // Everyone points at node 3.
        let g = graph(&[(0, 3), (1, 3), (2, 3)]);
        let r = pagerank(&g, &PageRankConfig::default());
        for u in 0..3 {
            assert!(r[3] > r[u], "sink should outrank feeders");
        }
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)]);
        let r = pagerank(&g, &PageRankConfig::default());
        for w in r.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // 0 -> 1, and 1 dangles.
        let g = graph(&[(0, 1)]);
        let r = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r[1] > r[0]);
    }

    #[test]
    fn top_k_reverses_for_influence() {
        // Hub 0 sends to everyone: on the reversed graph, everyone points at
        // 0, so 0 is the top influencer.
        let g = graph(&[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let top = pagerank_top_k(&g, 2, &PageRankConfig::default());
        assert_eq!(top[0], NodeId(0));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = StaticGraph::from_edges(0, std::iter::empty());
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
        assert!(pagerank_top_k(&g, 3, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let g = graph(&[(0, 1)]);
        assert_eq!(pagerank_top_k(&g, 10, &PageRankConfig::default()).len(), 2);
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn bad_restart_panics() {
        let g = graph(&[(0, 1)]);
        let cfg = PageRankConfig {
            restart: 1.0,
            ..Default::default()
        };
        let _ = pagerank(&g, &cfg);
    }
}
