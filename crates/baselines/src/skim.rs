//! SKIM — Sketch-based Influence Maximization (Cohen, Delling, Pajor &
//! Werneck, CIKM 2014) — reimplemented from scratch.
//!
//! SKIM approximates greedy influence maximization under the Independent
//! Cascade model by working on `ℓ` sampled *instances* (subgraphs where
//! each edge survives independently with probability `p`) and building
//! **combined bottom-k rank sketches** of reverse reachability:
//!
//! 1. every `(instance, node)` pair gets an i.i.d. uniform rank;
//! 2. pairs are processed in increasing rank order; each pair seeds a
//!    reverse BFS in its instance, appending its rank to the sketch of
//!    every node reached (pruned at nodes whose sketch is already full);
//! 3. the first node whose sketch reaches size `k` is (with high
//!    probability) the node of maximum residual influence — it is selected,
//!    its exact coverage is computed by a forward BFS in every instance
//!    simultaneously, covered pairs are struck from all sketches (via an
//!    inverted index), and the scan resumes;
//! 4. if the rank stream runs dry before `k` seeds are found, remaining
//!    seeds are picked by current sketch size with exact residual updates.
//!
//! Instances are stored as **bitmasks on the static edge array** (`ℓ ≤ 64`),
//! so the forward coverage BFS is bit-parallel: one `u64` per node tracks
//! the instances in which the node is already reached.
//!
//! The interaction network is flattened to its static view before SKIM runs,
//! exactly as the paper preprocesses it ("removing repeated interactions and
//! the time stamp of every interaction").

use infprop_temporal_graph::{NodeId, StaticGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SKIM parameters. Defaults follow Cohen et al.'s evaluation (ℓ = 64
/// instances, bottom-64 sketches).
#[derive(Clone, Copy, Debug)]
pub struct SkimConfig {
    /// Number of sampled IC instances (max 64: they live in a bitmask).
    pub num_instances: u32,
    /// Bottom-k sketch size.
    pub sketch_k: usize,
    /// IC edge survival probability.
    pub edge_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkimConfig {
    fn default() -> Self {
        SkimConfig {
            num_instances: 64,
            sketch_k: 64,
            edge_prob: 0.5,
            seed: 0,
        }
    }
}

/// A prepared SKIM instance: sampled edge masks plus the transposed view.
pub struct Skim {
    config: SkimConfig,
    /// Forward graph and per-edge instance masks (aligned with CSR order).
    forward: StaticGraph,
    forward_masks: Vec<u64>,
    forward_offsets: Vec<usize>,
    /// Transposed graph with masks aligned to its CSR order.
    reverse: StaticGraph,
    reverse_masks: Vec<u64>,
    reverse_offsets: Vec<usize>,
}

/// Prefix-sum of out-degrees: aligns a flat per-edge array with the CSR
/// neighbour slices.
fn csr_offsets(graph: &StaticGraph) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut offs = vec![0usize; n + 1];
    for u in 0..n {
        offs[u + 1] = offs[u] + graph.out_degree(NodeId::from_index(u));
    }
    offs
}

/// One selected seed with its estimated marginal coverage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkimSelection {
    /// Chosen seed.
    pub node: NodeId,
    /// Exact marginal coverage in the sampled instances, averaged over
    /// instances (an unbiased estimate of IC marginal spread).
    pub marginal_spread: f64,
}

impl Skim {
    /// Samples the IC instances for `graph` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `num_instances ∉ [1, 64]`, `sketch_k == 0`, or
    /// `edge_prob ∉ [0, 1]`.
    pub fn new(graph: &StaticGraph, config: SkimConfig) -> Self {
        assert!(
            (1..=64).contains(&config.num_instances),
            "num_instances must be in [1, 64]"
        );
        assert!(config.sketch_k > 0, "sketch_k must be positive");
        assert!(
            (0.0..=1.0).contains(&config.edge_prob),
            "edge_prob must be in [0, 1]"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let full: u64 = if config.num_instances == 64 {
            u64::MAX
        } else {
            (1u64 << config.num_instances) - 1
        };
        // Sample a mask per forward edge; keep a map for the transpose.
        let mut forward_masks = Vec::with_capacity(graph.num_edges());
        let mut edge_mask: infprop_hll::hash::FastHashMap<(NodeId, NodeId), u64> =
            infprop_hll::hash::FastHashMap::default();
        for (u, v) in graph.edges() {
            let mask = if config.edge_prob >= 1.0 {
                full
            } else {
                let mut m = 0u64;
                for b in 0..config.num_instances {
                    if rng.gen::<f64>() < config.edge_prob {
                        m |= 1 << b;
                    }
                }
                m
            };
            forward_masks.push(mask);
            edge_mask.insert((u, v), mask);
        }
        let reverse = graph.transpose();
        let reverse_masks = reverse.edges().map(|(v, u)| edge_mask[&(u, v)]).collect();
        let forward_offsets = csr_offsets(graph);
        let reverse_offsets = csr_offsets(&reverse);
        Skim {
            config,
            forward: graph.clone(),
            forward_masks,
            forward_offsets,
            reverse,
            reverse_masks,
            reverse_offsets,
        }
    }

    /// Runs the full SKIM selection of up to `k` seeds.
    pub fn select(&self, k: usize) -> Vec<SkimSelection> {
        let n = self.forward.num_nodes();
        let l = self.config.num_instances as usize;
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5b1c_9d2e_aa11_77ff);

        // Rank stream: all (instance, node) pairs in increasing rank order.
        let mut stream: Vec<(f32, u32, u32)> = Vec::with_capacity(l * n);
        for inst in 0..l as u32 {
            for v in 0..n as u32 {
                stream.push((rng.gen::<f32>(), inst, v));
            }
        }
        stream.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

        // Per-node sketch sizes; inverted index pair -> nodes holding it.
        let mut sketch_size = vec![0usize; n];
        let mut holders: Vec<Vec<u32>> = vec![Vec::new(); l * n];
        // covered[v] bit i = node v already reached by selected seeds in
        // instance i.
        let mut covered = vec![0u64; n];
        let mut selected = vec![false; n];
        let mut picks = Vec::with_capacity(k);

        let pair_id = |inst: u32, v: u32| inst as usize * n + v as usize;

        // Scratch buffers for the reverse BFS.
        let mut visited = vec![false; n];
        let mut queue: Vec<u32> = Vec::new();

        let mut cursor = 0usize;
        while picks.len() < k && cursor < stream.len() {
            let (_, inst, v0) = stream[cursor];
            cursor += 1;
            if covered[v0 as usize] >> inst & 1 == 1 {
                continue; // pair already covered by selected seeds
            }
            let pid = pair_id(inst, v0);
            // Reverse BFS in instance `inst` from v0, pruned at full
            // sketches and selected nodes.
            queue.clear();
            queue.push(v0);
            visited[v0 as usize] = true;
            let mut filled: Option<u32> = None;
            let mut qi = 0;
            while qi < queue.len() {
                let u = queue[qi];
                qi += 1;
                if !selected[u as usize] && sketch_size[u as usize] < self.config.sketch_k {
                    sketch_size[u as usize] += 1;
                    holders[pid].push(u);
                    if sketch_size[u as usize] == self.config.sketch_k {
                        filled = Some(u);
                        break;
                    }
                }
                // Expansion is pruned at nodes with full sketches: anything
                // behind them already collected enough evidence.
                if sketch_size[u as usize] >= self.config.sketch_k {
                    continue;
                }
                let node = NodeId(u);
                let base = self.reverse_offsets[u as usize];
                for (j, &w) in self.reverse.neighbors(node).iter().enumerate() {
                    if self.reverse_masks[base + j] >> inst & 1 == 1 && !visited[w.index()] {
                        visited[w.index()] = true;
                        queue.push(w.0);
                    }
                }
            }
            for &u in &queue {
                visited[u as usize] = false;
            }

            if let Some(s) = filled {
                self.take_seed(
                    NodeId(s),
                    &mut covered,
                    &mut selected,
                    &mut sketch_size,
                    &mut holders,
                    &mut picks,
                );
            }
        }

        // Stream exhausted: fall back to picking by residual sketch size.
        while picks.len() < k {
            let best = (0..n)
                .filter(|&u| !selected[u])
                .max_by_key(|&u| (sketch_size[u], std::cmp::Reverse(u)));
            let Some(u) = best else { break };
            if sketch_size[u] == 0 {
                break;
            }
            self.take_seed(
                NodeId(u as u32),
                &mut covered,
                &mut selected,
                &mut sketch_size,
                &mut holders,
                &mut picks,
            );
        }
        picks
    }

    /// Convenience: seed node ids only.
    pub fn top_k(&self, k: usize) -> Vec<NodeId> {
        self.select(k).into_iter().map(|s| s.node).collect()
    }

    /// Selects `s`: exact bit-parallel forward coverage, inverted-index
    /// sketch cleanup, bookkeeping.
    fn take_seed(
        &self,
        s: NodeId,
        covered: &mut [u64],
        selected: &mut [bool],
        sketch_size: &mut [usize],
        holders: &mut [Vec<u32>],
        picks: &mut Vec<SkimSelection>,
    ) {
        let n = self.forward.num_nodes();
        let full: u64 = if self.config.num_instances == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.num_instances) - 1
        };
        // Bit-parallel BFS: reach[v] = instances where v is newly reached.
        let mut reach = vec![0u64; n];
        let mut queue = vec![s.0];
        reach[s.index()] = full & !covered[s.index()];
        covered[s.index()] |= full;
        let offsets = &self.forward_offsets;
        let mut newly = 0u64;
        let mut qi = 0;
        // Count the seed's own newly covered pairs.
        newly += reach[s.index()].count_ones() as u64;
        self.strike_pairs(s.0, reach[s.index()], sketch_size, holders, n);
        while qi < queue.len() {
            let u = queue[qi];
            qi += 1;
            let active = covered[u as usize]; // bits where u is reached
            let node = NodeId(u);
            let base = offsets[u as usize];
            for (j, &v) in self.forward.neighbors(node).iter().enumerate() {
                let pass = active & self.forward_masks[base + j] & !covered[v.index()];
                if pass != 0 {
                    covered[v.index()] |= pass;
                    newly += pass.count_ones() as u64;
                    self.strike_pairs(v.0, pass, sketch_size, holders, n);
                    if reach[v.index()] == 0 {
                        queue.push(v.0);
                    }
                    reach[v.index()] |= pass;
                }
            }
        }
        selected[s.index()] = true;
        sketch_size[s.index()] = 0;
        picks.push(SkimSelection {
            node: s,
            marginal_spread: newly as f64 / self.config.num_instances as f64,
        });
    }

    /// Removes the pairs `(inst ∈ bits, v)` from every sketch holding them.
    fn strike_pairs(
        &self,
        v: u32,
        bits: u64,
        sketch_size: &mut [usize],
        holders: &mut [Vec<u32>],
        n: usize,
    ) {
        let mut b = bits;
        while b != 0 {
            let inst = b.trailing_zeros();
            b &= b - 1;
            let pid = inst as usize * n + v as usize;
            for &holder in &holders[pid] {
                sketch_size[holder as usize] = sketch_size[holder as usize].saturating_sub(1);
            }
            holders[pid].clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::InteractionNetwork;

    fn graph(pairs: &[(u32, u32)]) -> StaticGraph {
        InteractionNetwork::from_triples(
            pairs
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| (s, d, i as i64)),
        )
        .to_static()
    }

    #[test]
    fn deterministic_cascade_hub_wins() {
        // p = 1: instances are the full graph; the hub covers everything.
        let g = graph(&[(0, 1), (0, 2), (0, 3), (1, 2), (4, 0)]);
        let skim = Skim::new(
            &g,
            SkimConfig {
                edge_prob: 1.0,
                num_instances: 8,
                sketch_k: 4,
                seed: 1,
            },
        );
        let picks = skim.select(1);
        assert_eq!(picks.len(), 1);
        // Node 4 reaches everything (4 -> 0 -> {1,2,3}); node 0 reaches 4 nodes.
        assert_eq!(picks[0].node, NodeId(4));
        assert_eq!(picks[0].marginal_spread, 5.0);
    }

    #[test]
    fn residual_update_avoids_overlap() {
        // Two disjoint stars plus an overlapping shadow of star A.
        let g = graph(&[
            (0, 10),
            (0, 11),
            (0, 12),
            (1, 10),
            (1, 11),
            (1, 12),
            (2, 13),
            (2, 14),
        ]);
        let skim = Skim::new(
            &g,
            SkimConfig {
                edge_prob: 1.0,
                num_instances: 16,
                sketch_k: 8,
                seed: 2,
            },
        );
        let picks = skim.top_k(2);
        // After one of {0, 1} is chosen, 2 must beat the other twin.
        assert!(picks.contains(&NodeId(2)), "picks {picks:?}");
        assert!(picks.contains(&NodeId(0)) || picks.contains(&NodeId(1)));
    }

    #[test]
    fn three_components_are_all_covered() {
        // SKIM is *approximate* greedy (selection order follows sketch
        // filling, so marginals need not decrease monotonically), but with
        // p = 1 three picks must jointly cover nearly all of the three
        // components: a 5-chain, a 3-chain and a 2-chain.
        let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7), (8, 9)]);
        let skim = Skim::new(
            &g,
            SkimConfig {
                edge_prob: 1.0,
                num_instances: 4,
                sketch_k: 3,
                seed: 3,
            },
        );
        let picks = skim.select(3);
        assert_eq!(picks.len(), 3);
        let total: f64 = picks.iter().map(|p| p.marginal_spread).sum();
        assert!(total >= 8.0, "total covered {total} picks {picks:?}");
    }

    #[test]
    fn no_duplicate_seeds_and_bounded_k() {
        let g = graph(&[(0, 1), (1, 0), (2, 3)]);
        let skim = Skim::new(
            &g,
            SkimConfig {
                edge_prob: 1.0,
                ..Default::default()
            },
        );
        let picks = skim.top_k(10);
        let mut d = picks.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), picks.len());
        assert!(picks.len() <= 4);
    }

    #[test]
    fn zero_probability_still_selects_singletons() {
        // No edges survive: every node covers only itself; k picks happen
        // via the sketch stream (each pair (i, v) only reaches v).
        let g = graph(&[(0, 1), (1, 2)]);
        let skim = Skim::new(
            &g,
            SkimConfig {
                edge_prob: 0.0,
                num_instances: 8,
                sketch_k: 4,
                seed: 4,
            },
        );
        let picks = skim.select(2);
        assert_eq!(picks.len(), 2);
        for p in picks {
            assert!((p.marginal_spread - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (4, 1)]);
        let cfg = SkimConfig {
            edge_prob: 0.5,
            num_instances: 32,
            sketch_k: 8,
            seed: 11,
        };
        assert_eq!(Skim::new(&g, cfg).top_k(3), Skim::new(&g, cfg).top_k(3));
    }

    #[test]
    fn empty_graph_selects_nothing() {
        let g = StaticGraph::from_edges(0, std::iter::empty());
        let skim = Skim::new(&g, SkimConfig::default());
        assert!(skim.select(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "num_instances must be in [1, 64]")]
    fn too_many_instances_panics() {
        let g = graph(&[(0, 1)]);
        let _ = Skim::new(
            &g,
            SkimConfig {
                num_instances: 65,
                ..Default::default()
            },
        );
    }
}
