//! ConTinEst — scalable influence estimation in continuous-time diffusion
//! networks (Du, Song, Gomez-Rodriguez & Zha, NIPS 2013) — reimplemented
//! from scratch.
//!
//! The model: information traverses edge `(u, v)` after a random
//! transmission delay `τ_uv ~ Exp(rate = 1/w_uv)`, where the weight `w_uv`
//! comes from the paper's interaction → weighted-graph transformation
//! (`t − u_i`, see [`WeightedStaticGraph::from_network`]). The influence of
//! a seed set `S` with time budget `T` is the expected number of nodes whose
//! shortest delay distance from `S` is at most `T`.
//!
//! Estimation uses Cohen's randomized size-estimation framework, as in the
//! original system: for each of `num_samples` sampled delay assignments and
//! each of `num_labels` draws of i.i.d. `Exp(1)` node labels, compute for
//! every node `u` the **least label** within delay distance `T` of `u`.
//! With `m = num_samples × num_labels` least-label values `r*_j(u)`, the
//! neighbourhood size estimator is `|N(u, T)| ≈ (m − 1) / Σ_j r*_j(u)`, and
//! the estimator extends to sets by `r*_j(S) = min_{u∈S} r*_j(u)` — which is
//! what makes greedy selection cheap.
//!
//! Least labels are computed with the label-ordered pruned reverse Dijkstra
//! of Cohen's framework: process labels in increasing order; each label
//! relaxes outward on the transposed graph, pruning at nodes already reached
//! at a smaller or equal distance by an earlier (smaller) label.
//!
//! The original evaluation uses thousands of samples; defaults here are
//! laptop-scale (documented in DESIGN.md) and configurable.

use infprop_temporal_graph::{NodeId, WeightedStaticGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// ConTinEst parameters.
#[derive(Clone, Copy, Debug)]
pub struct ConTinEstConfig {
    /// Time budget `T`: a node counts as influenced if it is reachable
    /// within this total transmission delay. The experiments set it to the
    /// same absolute window ω used by the IRS methods.
    pub time_budget: f64,
    /// Number of sampled delay assignments.
    pub num_samples: usize,
    /// Number of `Exp(1)` label draws per sample.
    pub num_labels: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ConTinEstConfig {
    /// Laptop-scale defaults: 5 samples × 4 label draws.
    pub fn new(time_budget: f64) -> Self {
        ConTinEstConfig {
            time_budget,
            num_samples: 5,
            num_labels: 4,
            seed: 0,
        }
    }

    /// Sets sampling effort.
    pub fn with_effort(mut self, num_samples: usize, num_labels: usize) -> Self {
        self.num_samples = num_samples.max(1);
        self.num_labels = num_labels.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A prepared ConTinEst estimator: the `m × n` least-label matrix.
pub struct ConTinEst {
    /// `labels[j][u]` — least label within distance `T` of `u` in run `j`.
    labels: Vec<Vec<f64>>,
    num_nodes: usize,
}

impl ConTinEst {
    /// Builds the least-label matrix for `graph` under `config`.
    pub fn new(graph: &WeightedStaticGraph, config: &ConTinEstConfig) -> Self {
        assert!(config.time_budget > 0.0, "time budget must be positive");
        let n = graph.num_nodes();
        let transposed = graph.transpose();
        let mut runs = Vec::with_capacity(config.num_samples * config.num_labels);
        let mut rng = SmallRng::seed_from_u64(config.seed);

        for _ in 0..config.num_samples {
            // One delay assignment: τ_e ~ Exp(rate 1/w_e) ⇒ τ = −w·ln(U),
            // sampled in CSR order on the transposed graph (same joint
            // distribution as sampling on the forward edges).
            let mut delays: Vec<f64> = Vec::with_capacity(transposed.num_edges());
            for u in 0..n {
                for e in transposed.out_edges(NodeId::from_index(u)) {
                    let u01: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    delays.push(-e.weight * u01.ln());
                }
            }
            for _ in 0..config.num_labels {
                let node_labels: Vec<f64> = (0..n)
                    .map(|_| -(rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln())
                    .collect();
                runs.push(least_labels(
                    &transposed,
                    &delays,
                    &node_labels,
                    config.time_budget,
                ));
            }
        }
        ConTinEst {
            labels: runs,
            num_nodes: n,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Estimated influence (expected `|N(S, T)|`) of a seed set.
    ///
    /// Includes the seeds themselves, like the original estimator.
    pub fn influence(&self, seeds: &[NodeId]) -> f64 {
        if seeds.is_empty() || self.labels.is_empty() {
            return 0.0;
        }
        let m = self.labels.len();
        if m == 1 {
            // Degenerate single-run estimator: fall back to 1/r*.
            let r = self.min_label(&self.labels[0], seeds);
            return (1.0 / r).min(self.num_nodes as f64);
        }
        let sum: f64 = self
            .labels
            .iter()
            .map(|run| self.min_label(run, seeds))
            .sum();
        (((m - 1) as f64) / sum).min(self.num_nodes as f64)
    }

    fn min_label(&self, run: &[f64], seeds: &[NodeId]) -> f64 {
        seeds
            .iter()
            .map(|s| run[s.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Greedy top-k seed selection by estimated marginal influence, with
    /// CELF-style lazy evaluation (the estimator is monotone submodular in
    /// the same way as the exact coverage function).
    pub fn top_k(&self, k: usize) -> Vec<NodeId> {
        let n = self.num_nodes;
        if n == 0 || k == 0 {
            return Vec::new();
        }
        // Current per-run minima for the selected set.
        let mut current: Vec<f64> = vec![f64::INFINITY; self.labels.len()];
        let mut current_inf = 0.0f64;
        let gain_of = |current: &[f64], current_inf: f64, u: NodeId| -> f64 {
            let m = self.labels.len();
            let sum: f64 = self
                .labels
                .iter()
                .zip(current)
                .map(|(run, &cur)| cur.min(run[u.index()]))
                .sum();
            let inf = if m == 1 {
                (1.0 / sum).min(self.num_nodes as f64)
            } else {
                (((m - 1) as f64) / sum).min(self.num_nodes as f64)
            };
            inf - current_inf
        };

        #[derive(PartialEq)]
        struct Cand(f64, u32, usize);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
            }
        }

        let mut heap: BinaryHeap<Cand> = (0..n as u32)
            .map(|u| Cand(gain_of(&current, current_inf, NodeId(u)), u, 0))
            .collect();
        let mut picks = Vec::with_capacity(k);
        let mut round = 0usize;
        while picks.len() < k {
            let Some(Cand(gain, u, stamped)) = heap.pop() else {
                break;
            };
            if stamped == round {
                // Zero (or capped-away) marginal gains still yield a pick:
                // the estimator saturates at n on densely connected inputs,
                // and a top-k API should fill k seeds while nodes remain.
                let _ = gain;
                for (cur, run) in current.iter_mut().zip(&self.labels) {
                    *cur = cur.min(run[u as usize]);
                }
                current_inf += gain.max(0.0);
                picks.push(NodeId(u));
                round += 1;
            } else {
                heap.push(Cand(gain_of(&current, current_inf, NodeId(u)), u, round));
            }
        }
        picks
    }
}

/// Cohen's label-ordered pruned multi-source Dijkstra: for every node, the
/// minimum `Exp(1)` label among nodes within delay distance ≤ `budget`
/// (forward in the original graph = reverse on `transposed`).
fn least_labels(
    transposed: &WeightedStaticGraph,
    delays: &[f64],
    node_labels: &[f64],
    budget: f64,
) -> Vec<f64> {
    let n = transposed.num_nodes();
    // CSR offsets to align `delays` with `out_edges`.
    let mut offsets = vec![0usize; n + 1];
    for u in 0..n {
        offsets[u + 1] = offsets[u] + transposed.out_edges(NodeId::from_index(u)).len();
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| node_labels[a as usize].total_cmp(&node_labels[b as usize]));

    let mut result = vec![f64::INFINITY; n];
    // Smallest distance at which any earlier (smaller) label reached a node.
    let mut best_dist = vec![f64::INFINITY; n];
    let mut assigned = 0usize;
    let mut heap: BinaryHeap<(Reverse<OrderedF64>, u32)> = BinaryHeap::new();

    for &src in &order {
        if assigned == n {
            break;
        }
        if best_dist[src as usize] <= 0.0 {
            continue; // already reached at distance 0 by a smaller label
        }
        heap.clear();
        heap.push((Reverse(OrderedF64(0.0)), src));
        while let Some((Reverse(OrderedF64(d)), u)) = heap.pop() {
            if d >= best_dist[u as usize] {
                continue; // a smaller label already covers everything beyond u
            }
            if result[u as usize].is_infinite() {
                result[u as usize] = node_labels[src as usize];
                assigned += 1;
            }
            best_dist[u as usize] = d;
            let base = offsets[u as usize];
            for (j, e) in transposed.out_edges(NodeId(u)).iter().enumerate() {
                let nd = d + delays[base + j];
                if nd <= budget && nd < best_dist[e.dst.index()] {
                    heap.push((Reverse(OrderedF64(nd)), e.dst.0));
                }
            }
        }
    }
    result
}

/// Total-order f64 wrapper for the Dijkstra heap.
#[derive(PartialEq, Clone, Copy)]
struct OrderedF64(f64);
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::InteractionNetwork;

    /// Direct tests of the label-ordered pruned Dijkstra.
    mod least_labels_direct {
        use super::super::*;

        /// Forward chain 0 → 1 → 2 with unit delays. On the transposed
        /// graph, node u's ball of radius T is its forward-reachable set in
        /// the original graph.
        fn chain_transposed() -> WeightedStaticGraph {
            // Transposed edges: 1 → 0, 2 → 1, each delay carried in order.
            WeightedStaticGraph::from_weighted_edges(
                3,
                vec![(NodeId(1), NodeId(0), 1.0), (NodeId(2), NodeId(1), 1.0)],
            )
        }

        #[test]
        fn min_label_in_ball_with_big_budget() {
            let g = chain_transposed();
            let delays = vec![1.0, 1.0]; // CSR order on the transposed graph
                                         // Labels: node 2 has the smallest.
            let labels = vec![0.9, 0.5, 0.1];
            let out = least_labels(&g, &delays, &labels, 10.0);
            // Ball(0) = {0,1,2} -> 0.1; Ball(1) = {1,2} -> 0.1; Ball(2) = {2}.
            assert_eq!(out, vec![0.1, 0.1, 0.1]);
        }

        #[test]
        fn budget_cuts_far_labels() {
            let g = chain_transposed();
            let delays = vec![1.0, 1.0];
            let labels = vec![0.9, 0.5, 0.1];
            // Budget 1.5: Ball(0) = {0,1}, Ball(1) = {1,2}, Ball(2) = {2}.
            let out = least_labels(&g, &delays, &labels, 1.5);
            assert_eq!(out, vec![0.5, 0.1, 0.1]);
        }

        #[test]
        fn every_node_gets_its_own_label_at_least() {
            let g = WeightedStaticGraph::from_weighted_edges(4, vec![]);
            let labels = vec![0.4, 0.3, 0.2, 0.1];
            let out = least_labels(&g, &[], &labels, 1.0);
            assert_eq!(out, labels);
        }

        #[test]
        fn pruning_never_loses_smaller_labels() {
            // Diamond on the transposed graph: 3 -> 1 -> 0, 3 -> 2 -> 0
            // (original: 0 -> {1,2} -> 3). Short path through 1, long
            // through 2.
            let g = WeightedStaticGraph::from_weighted_edges(
                4,
                vec![
                    (NodeId(1), NodeId(0), 1.0),
                    (NodeId(2), NodeId(0), 1.0),
                    (NodeId(3), NodeId(1), 1.0),
                    (NodeId(3), NodeId(2), 5.0),
                ],
            );
            // CSR order: edges sorted by (src, dst): (1,0),(2,0),(3,1),(3,2).
            let delays = vec![1.0, 1.0, 1.0, 5.0];
            let labels = vec![0.9, 0.8, 0.7, 0.05];
            // Budget 2.5: original-graph balls:
            //   Ball(0) = {0,1,2,3} (3 via 1 at distance 2)    -> 0.05
            //   Ball(1) = {1,3}                                 -> 0.05
            //   Ball(2) = {2} (the 2→3 delay 5.0 > 2.5)         -> 0.7
            //   Ball(3) = {3}                                   -> 0.05
            let out = least_labels(&g, &delays, &labels, 2.5);
            assert_eq!(out, vec![0.05, 0.05, 0.7, 0.05]);
        }
    }

    fn weighted(triples: &[(u32, u32, i64)]) -> WeightedStaticGraph {
        WeightedStaticGraph::from_network(&InteractionNetwork::from_triples(
            triples.iter().copied(),
        ))
    }

    #[test]
    fn isolated_node_influences_only_itself() {
        let g = weighted(&[(0, 1, 1)]);
        let cfg = ConTinEstConfig::new(10.0).with_effort(8, 4).with_seed(1);
        let ct = ConTinEst::new(&g, &cfg);
        // Node 1 has no out-edges: |N(1, T)| = 1 exactly (its own label).
        let inf = ct.influence(&[NodeId(1)]);
        assert!((inf - 1.0).abs() < 0.6, "influence {inf}");
    }

    #[test]
    fn hub_outranks_leaf() {
        // 0 → {1,2,3,4} quickly; 4 → nothing.
        let g = weighted(&[(0, 1, 1), (0, 2, 2), (0, 3, 3), (0, 4, 4)]);
        let cfg = ConTinEstConfig::new(100.0).with_effort(10, 5).with_seed(2);
        let ct = ConTinEst::new(&g, &cfg);
        assert!(ct.influence(&[NodeId(0)]) > ct.influence(&[NodeId(4)]));
        assert_eq!(ct.top_k(1), vec![NodeId(0)]);
    }

    #[test]
    fn influence_is_monotone_in_budget() {
        let g = weighted(&[(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
        let small = ConTinEst::new(
            &g,
            &ConTinEstConfig::new(0.5).with_effort(10, 5).with_seed(3),
        );
        let large = ConTinEst::new(
            &g,
            &ConTinEstConfig::new(500.0).with_effort(10, 5).with_seed(3),
        );
        assert!(large.influence(&[NodeId(0)]) + 1e-9 >= small.influence(&[NodeId(0)]));
    }

    #[test]
    fn set_influence_at_least_best_individual() {
        let g = weighted(&[(0, 1, 1), (2, 3, 2), (3, 4, 3)]);
        let ct = ConTinEst::new(
            &g,
            &ConTinEstConfig::new(100.0).with_effort(10, 5).with_seed(4),
        );
        let both = ct.influence(&[NodeId(0), NodeId(2)]);
        let a = ct.influence(&[NodeId(0)]);
        let b = ct.influence(&[NodeId(2)]);
        assert!(both + 1e-9 >= a.max(b), "both {both} a {a} b {b}");
    }

    #[test]
    fn top_k_returns_distinct_nodes() {
        let g = weighted(&[(0, 1, 1), (1, 2, 2), (2, 0, 3), (3, 4, 4)]);
        let ct = ConTinEst::new(
            &g,
            &ConTinEstConfig::new(50.0).with_effort(6, 4).with_seed(5),
        );
        let picks = ct.top_k(3);
        let mut dedup = picks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), picks.len());
        assert!(!picks.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let g = weighted(&[(0, 1, 1), (1, 2, 2), (0, 3, 5), (3, 2, 6)]);
        let cfg = ConTinEstConfig::new(20.0).with_effort(4, 3).with_seed(9);
        let a = ConTinEst::new(&g, &cfg).top_k(2);
        let b = ConTinEst::new(&g, &cfg).top_k(2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_seed_set_is_zero() {
        let g = weighted(&[(0, 1, 1)]);
        let ct = ConTinEst::new(&g, &ConTinEstConfig::new(10.0));
        assert_eq!(ct.influence(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "time budget must be positive")]
    fn zero_budget_panics() {
        let g = weighted(&[(0, 1, 1)]);
        let _ = ConTinEst::new(&g, &ConTinEstConfig::new(0.0));
    }

    #[test]
    fn estimator_tracks_true_ball_size_on_chain() {
        // Chain with unit-ish weights and a huge budget: every node's ball
        // is the whole downstream suffix. With enough runs the estimate of
        // node 0's neighbourhood should be near 5 (nodes 0..=4).
        let g = weighted(&[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4)]);
        let ct = ConTinEst::new(
            &g,
            &ConTinEstConfig::new(1e6).with_effort(40, 10).with_seed(6),
        );
        let inf = ct.influence(&[NodeId(0)]);
        assert!((inf - 5.0).abs() < 1.5, "influence {inf}");
    }
}
