//! Influence-maximization baselines from §6 of the paper.
//!
//! All baselines consume the flattened static view of the interaction
//! network — "removing repeated interactions and the time stamp of every
//! interaction" — exactly as the paper preprocesses its competitors' input:
//!
//! * [`pagerank`] — PageRank on the **reversed** graph (restart 0.15, L1
//!   tolerance 1e-4, the paper's settings): incoming importance becomes
//!   outgoing influence.
//! * [`high_degree`] — top-k nodes by static out-degree (HD).
//! * [`smart_high_degree`] — greedy distinct-out-neighbour max coverage
//!   (SHD), the paper's overlap-aware variant of HD — "actually a special
//!   case of our IRS algorithm where we set ω = 0".
//! * [`degree_discount`] — Chen et al.'s KDD 2009 DegreeDiscount heuristic
//!   (cited in the paper's related work), adapted to directed graphs.
//! * [`Skim`] — a from-scratch implementation of Cohen et al.'s
//!   *Sketch-based Influence Maximization* (CIKM 2014): combined bottom-k
//!   reachability sketches over sampled Independent Cascade instances, with
//!   residual-coverage greedy selection.
//! * [`ConTinEst`] — a from-scratch implementation of Du et al.'s
//!   continuous-time influence estimation (NIPS 2013): the interaction
//!   network becomes a transmission-time-weighted graph (paper §6's
//!   `t − u_i` transformation), influence is the expected number of nodes
//!   reachable within a time budget under exponential edge delays, and
//!   neighbourhood sizes are estimated with Cohen's exponential-rank
//!   least-label lists.
//!
//! Every randomized method takes an explicit RNG seed and is fully
//! reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod continest;
mod degree;
mod degree_discount;
mod pagerank;
mod skim;

pub use continest::{ConTinEst, ConTinEstConfig};
pub use degree::{high_degree, smart_high_degree};
pub use degree_discount::degree_discount;
pub use pagerank::{pagerank, pagerank_top_k, PageRankConfig};
pub use skim::{Skim, SkimConfig};
