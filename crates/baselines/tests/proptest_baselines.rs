//! Property tests for the baseline seed-selection methods.

use infprop_baselines::{
    degree_discount, high_degree, pagerank, pagerank_top_k, smart_high_degree, PageRankConfig,
    Skim, SkimConfig,
};
use infprop_hll::hash::FastHashSet;
use infprop_temporal_graph::{InteractionNetwork, NodeId, StaticGraph};
use proptest::prelude::*;

fn graphs() -> impl Strategy<Value = StaticGraph> {
    prop::collection::vec((0u32..15, 0u32..15), 0..80).prop_map(|pairs| {
        InteractionNetwork::from_triples(
            pairs
                .into_iter()
                .enumerate()
                .map(|(i, (s, d))| (s, d, i as i64)),
        )
        .to_static()
    })
}

proptest! {
    /// PageRank scores are a probability distribution: non-negative,
    /// summing to one (up to float error) on non-empty graphs.
    #[test]
    fn pagerank_is_a_distribution(g in graphs()) {
        let r = pagerank(&g, &PageRankConfig::default());
        prop_assert_eq!(r.len(), g.num_nodes());
        if !r.is_empty() {
            prop_assert!(r.iter().all(|&x| x >= 0.0));
            let sum: f64 = r.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        }
    }

    /// PageRank top-k never repeats nodes and never exceeds n.
    #[test]
    fn pagerank_topk_is_a_set(g in graphs(), k in 0usize..20) {
        let top = pagerank_top_k(&g, k, &PageRankConfig::default());
        prop_assert!(top.len() <= k.min(g.num_nodes()));
        let mut dedup = top.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), top.len());
    }

    /// HD picks are sorted by degree; SHD's first pick matches HD's, and
    /// SHD coverage is at least HD coverage.
    #[test]
    fn shd_dominates_hd_coverage(g in graphs(), k in 1usize..8) {
        let hd = high_degree(&g, k);
        let shd = smart_high_degree(&g, k);
        if !hd.is_empty() && !shd.is_empty() {
            prop_assert_eq!(hd[0], shd[0]);
        }
        let coverage = |seeds: &[NodeId]| {
            let mut s: FastHashSet<NodeId> = FastHashSet::default();
            for &u in seeds {
                s.extend(g.neighbors(u).iter().copied());
            }
            s.len()
        };
        // Greedy max coverage carries the classic (1 − 1/e) guarantee
        // against ANY same-size set, in particular HD's prefix. (Exact
        // dominance over HD prefixes is not a theorem for k ≥ 3.)
        let bound = (1.0 - 1.0 / std::f64::consts::E)
            * coverage(&hd[..hd.len().min(shd.len())]) as f64;
        prop_assert!(coverage(&shd) as f64 + 1e-9 >= bound);
    }

    /// DegreeDiscount returns distinct in-universe nodes, bounded by k.
    #[test]
    fn degree_discount_well_formed(g in graphs(), k in 0usize..10, p in 0.0f64..=1.0) {
        let picks = degree_discount(&g, k, p);
        prop_assert!(picks.len() <= k.min(g.num_nodes()));
        let mut dedup = picks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), picks.len());
        prop_assert!(picks.iter().all(|u| u.index() < g.num_nodes()));
    }

    /// SKIM is deterministic per seed and returns distinct nodes; with
    /// p = 1 its first pick covers at least as much as any single node
    /// (it is exact greedy in the deterministic instance).
    #[test]
    fn skim_well_formed(g in graphs(), k in 1usize..6, seed in 0u64..50) {
        let cfg = SkimConfig {
            edge_prob: 1.0,
            num_instances: 8,
            sketch_k: 16,
            seed,
        };
        let skim = Skim::new(&g, cfg);
        let a = skim.select(k);
        let b = Skim::new(&g, cfg).select(k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.node, y.node);
        }
        let mut nodes: Vec<NodeId> = a.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), a.len());
        // Deterministic instances: the first pick's coverage is its exact
        // reachability size — at least 1 (itself) and at most the maximum
        // reach over all nodes. (SKIM selects the max only w.h.p.: with
        // small sketches the rank stream can fill a near-maximal node
        // first, so exact-argmax is not a sound property.)
        if let Some(first) = a.first() {
            let mut scratch = Vec::new();
            let best = (0..g.num_nodes())
                .map(|u| g.bfs_reachable(NodeId::from_index(u), &mut scratch).len())
                .max()
                .unwrap_or(0);
            prop_assert!(first.marginal_spread >= 1.0);
            prop_assert!(first.marginal_spread <= best as f64 + 1e-9);
            // It must also equal the exact reach of the node it picked.
            let reach = g.bfs_reachable(first.node, &mut scratch).len();
            prop_assert!(
                (first.marginal_spread - reach as f64).abs() < 1e-9,
                "first covers {} vs its reach {}",
                first.marginal_spread,
                reach
            );
        }
    }

    /// SKIM marginal spreads sum to at most the number of nodes when
    /// p = 1 (coverage counts are disjoint by construction).
    #[test]
    fn skim_coverage_is_disjoint(g in graphs(), k in 1usize..8) {
        let skim = Skim::new(
            &g,
            SkimConfig { edge_prob: 1.0, num_instances: 4, sketch_k: 8, seed: 3 },
        );
        let picks = skim.select(k);
        let total: f64 = picks.iter().map(|s| s.marginal_spread).sum();
        prop_assert!(total <= g.num_nodes() as f64 + 1e-9, "total {}", total);
    }
}
