//! `cargo xtask analyze` — call-graph-aware semantic passes.
//!
//! Four passes run over the parsed workspace (see DESIGN.md §12):
//!
//! 1. **alloc-free** — functions contracted `// xtask-contract: alloc-free`
//!    must not reach an allocating construct (`Vec::new`, `push`,
//!    `collect`, `vec!`, `format!`, `Box::new`, `String` construction, …)
//!    transitively through the call graph. Diagnostics print the violating
//!    call chain.
//! 2. **no-panic** — contracted functions must be transitively panic-free:
//!    no `unwrap`/`expect`, no `panic!`-family or `assert!`-family macros
//!    (`debug_assert!` is compiled out and stays legal), no indexing.
//! 3. **metrics** — the metric registry declared in `obs.rs` (merged with
//!    the `TraceEvent` roster declared in `trace.rs`) must be internally
//!    consistent, every metric-shaped string literal in library code and
//!    CI workflows must be registered, and no variant may be orphaned.
//! 4. **stale-waiver** — `// xtask-allow:` comments that no longer suppress
//!    any lint or analyzer finding (or name an unknown rule) are
//!    themselves diagnostics.
//!
//! The `kernel` contract sits between 1 and 2: allocation, `unwrap`/
//! `expect` and `panic!`-family macros are banned, but indexing and
//! `assert!` stay legal — hot kernels index arenas and guard invariants.
//!
//! Banned names are *resolution-first*: a call like `union.insert(…)` whose
//! receiver type is recovered (here via the impl's `type Union = …`
//! binding) and resolves to a workspace function becomes a call-graph edge
//! and is judged by that callee's own body; a banned name that stays
//! unresolved is conservatively a violation. The unique-name fallback never
//! blesses a banned name.

use crate::callgraph::{self, CallGraph, FnFacts, Resolution};
use crate::items::{self, Contract, ParsedFile};
use crate::registry::{self, MetricRegistry};
use crate::rules::{collect_allow_entries, lint_file_consuming, Rule};
use crate::workspace::{discover, SourceFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which analyzer pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// Transitive allocation-freedom (`xtask-contract: alloc-free`).
    AllocFree,
    /// Transitive panic-freedom (`xtask-contract: no-panic`).
    NoPanic,
    /// Hot-path kernel contract (`xtask-contract: kernel`).
    Kernel,
    /// Metrics-registry consistency and literal cross-check.
    Metrics,
    /// Stale or unknown `xtask-allow` waivers.
    StaleWaiver,
    /// Malformed contract comments (unknown contract names).
    Contract,
}

impl Pass {
    /// The pass name used in diagnostics and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Pass::AllocFree => "alloc-free",
            Pass::NoPanic => "no-panic",
            Pass::Kernel => "kernel",
            Pass::Metrics => "metrics",
            Pass::StaleWaiver => "stale-waiver",
            Pass::Contract => "contract",
        }
    }

    /// The `xtask-allow` name that waives this pass's findings, if any.
    /// The stale-waiver pass is itself unwaivable by construction.
    fn waiver_name(self) -> Option<&'static str> {
        match self {
            Pass::AllocFree => Some("contract-alloc-free"),
            Pass::NoPanic => Some("contract-no-panic"),
            Pass::Kernel => Some("contract-kernel"),
            Pass::Metrics => Some("metric-registry"),
            Pass::StaleWaiver | Pass::Contract => None,
        }
    }
}

/// Waiver names the analyzer understands in `xtask-allow` comments, beyond
/// the lint [`Rule`] names.
pub const ANALYZER_WAIVERS: [&str; 5] = [
    "contract-alloc-free",
    "contract-no-panic",
    "contract-kernel",
    "metric-registry",
    "metric-orphan",
];

/// One analyzer diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// The pass that fired.
    pub pass: Pass,
    /// Human-readable explanation.
    pub message: String,
    /// For contract passes: the call chain from the contracted root to the
    /// violating function, as `Owner::name (path:line)` frames.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [analyze/{}] {}",
            self.file.display(),
            self.line,
            self.pass.name(),
            self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    via {}", self.chain.join("\n     -> "))?;
        }
        Ok(())
    }
}

/// The analyzer's result: diagnostics plus the extracted metric registry
/// (empty when the workspace has no `obs.rs`).
#[derive(Debug)]
pub struct AnalysisReport {
    /// All diagnostics, sorted by file, line, pass.
    pub diagnostics: Vec<Diagnostic>,
    /// The metric registry, for `--emit-registry`.
    pub registry: MetricRegistry,
}

impl AnalysisReport {
    /// Serializes the diagnostics as JSON for `--format json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!(
                "\"file\": \"{}\", \"line\": {}, \"pass\": \"{}\", \"message\": \"{}\"",
                json_escape(&d.file.display().to_string()),
                d.line,
                d.pass.name(),
                json_escape(&d.message)
            ));
            if !d.chain.is_empty() {
                out.push_str(", \"chain\": [");
                for (j, frame) in d.chain.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\"", json_escape(frame)));
                }
                out.push(']');
            }
            out.push('}');
            out.push_str(if i + 1 < self.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str(&format!(
            "  ],\n  \"count\": {}\n}}\n",
            self.diagnostics.len()
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Names whose *unresolved* method call allocates (or may reallocate).
const ALLOC_METHODS: [&str; 17] = [
    "push",
    "push_str",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "extend",
    "extend_from_slice",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
    "insert",
    "append",
    "split_off",
    "into_vec",
    "into_boxed_slice",
];

/// Allocating-container path heads: `Vec::new(…)`, `Box::new(…)`, ….
const ALLOC_OWNERS: [&str; 12] = [
    "Vec", "VecDeque", "Box", "String", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "FastMap",
    "FastSet", "Rc", "Arc",
];

/// Constructor names that allocate when the owner is an allocating
/// container.
const ALLOC_CTORS: [&str; 5] = ["new", "with_capacity", "from", "from_iter", "default"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Macros that abort under `no-panic` and `kernel`.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Macros additionally banned under strict `no-panic` (`debug_assert!` is
/// compiled out in release and stays legal everywhere).
const ASSERT_MACROS: [&str; 3] = ["assert", "assert_eq", "assert_ne"];

/// Methods that panic on `None`/`Err`.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Analyzes the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<AnalysisReport> {
    let files = discover(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        sources.push(fs::read_to_string(&f.abs_path)?);
    }
    let parsed: Vec<ParsedFile> = sources.iter().map(|s| items::parse_file(s)).collect();
    let graph = callgraph::build(&parsed);

    let mut diagnostics = Vec::new();
    // Waivers actually consumed, keyed `(file index, line, waiver name)`.
    let mut consumed: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    // Allow entries per file: line → names in force on that line.
    let allows: Vec<BTreeMap<u32, BTreeSet<String>>> = sources
        .iter()
        .map(|s| {
            let mut map: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
            for e in collect_allow_entries(s) {
                map.entry(e.line).or_default().insert(e.name.clone());
                map.entry(e.line + 1).or_default().insert(e.name);
            }
            map
        })
        .collect();

    contract_passes(
        &files,
        &parsed,
        &graph,
        &allows,
        &mut consumed,
        &mut diagnostics,
    );
    let registry = metrics_pass(
        root,
        &files,
        &sources,
        &allows,
        &mut consumed,
        &mut diagnostics,
    )?;
    stale_pass(&files, &sources, &consumed, &mut diagnostics)?;

    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.pass, &a.message).cmp(&(&b.file, b.line, b.pass, &b.message))
    });
    Ok(AnalysisReport {
        diagnostics,
        registry,
    })
}

/// Runs passes 1 and 2 (and the kernel contract) over every contracted fn.
fn contract_passes(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    graph: &CallGraph,
    allows: &[BTreeMap<u32, BTreeSet<String>>],
    consumed: &mut BTreeSet<(usize, u32, String)>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // Unknown contract names are diagnostics regardless of contracts.
    for (fi, p) in parsed.iter().enumerate() {
        for f in &p.fns {
            for (line, name) in &f.unknown_contracts {
                diagnostics.push(Diagnostic {
                    file: files[fi].ctx.path.clone(),
                    line: *line,
                    pass: Pass::Contract,
                    message: format!(
                        "unknown contract `{name}` on fn `{}` (known: alloc-free, no-panic, kernel)",
                        qualified(f)
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    // Deduplicate violations shared by several contracted roots.
    let mut seen: BTreeSet<(Pass, usize, u32, String)> = BTreeSet::new();

    for root_id in 0..graph.fns.len() {
        let (fi, k) = graph.locate(root_id);
        let root_fn = &parsed[fi].fns[k];
        if root_fn.in_test_region || root_fn.contracts.is_empty() {
            continue;
        }
        for &contract in &root_fn.contracts {
            let pass = match contract {
                Contract::AllocFree => Pass::AllocFree,
                Contract::NoPanic => Pass::NoPanic,
                Contract::Kernel => Pass::Kernel,
            };
            // BFS with parent pointers for chain reconstruction.
            let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
            let mut queue = VecDeque::from([root_id]);
            let mut visited = BTreeSet::from([root_id]);
            while let Some(id) = queue.pop_front() {
                let (vfi, vk) = graph.locate(id);
                let vfn = &parsed[vfi].fns[vk];
                let facts = &graph.facts[id];
                for (line, what) in scan_fn(contract, facts) {
                    let waived = pass.waiver_name().is_some_and(|w| {
                        allows[vfi]
                            .get(&line)
                            .is_some_and(|names| names.contains(w))
                    });
                    if waived {
                        let w = pass.waiver_name().unwrap_or_default().to_string();
                        consumed.insert((vfi, line, w.clone()));
                        if let Some(prev) = line.checked_sub(1) {
                            consumed.insert((vfi, prev, w));
                        }
                        continue;
                    }
                    let key = (pass, vfi, line, what.clone());
                    if !seen.insert(key) {
                        continue;
                    }
                    let chain = chain_frames(files, parsed, graph, &parent, root_id, id);
                    diagnostics.push(Diagnostic {
                        file: files[vfi].ctx.path.clone(),
                        line,
                        pass,
                        message: format!(
                            "{what} inside `{}`, reached from `{}` contracted `{}`",
                            qualified(vfn),
                            qualified(root_fn),
                            contract.name()
                        ),
                        chain,
                    });
                }
                for call in &facts.calls {
                    let next = match call.resolution {
                        Resolution::Resolved(id) | Resolution::Fallback(id) => id,
                        _ => continue,
                    };
                    if visited.insert(next) {
                        parent.insert(next, id);
                        queue.push_back(next);
                    }
                }
            }
        }
    }
}

/// The banned constructs a single function body exhibits under `contract`.
fn scan_fn(contract: Contract, facts: &FnFacts) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let alloc = matches!(contract, Contract::AllocFree | Contract::Kernel);
    let panic_strict = matches!(contract, Contract::NoPanic);
    let panic_any = matches!(contract, Contract::NoPanic | Contract::Kernel);

    for c in &facts.calls {
        let name = c.name.as_str();
        match c.resolution {
            Resolution::Macro => {
                if alloc && ALLOC_MACROS.contains(&name) {
                    out.push((c.line, format!("allocating macro `{name}!`")));
                }
                if panic_any && PANIC_MACROS.contains(&name) {
                    out.push((c.line, format!("panicking macro `{name}!`")));
                }
                if panic_strict && ASSERT_MACROS.contains(&name) {
                    out.push((c.line, format!("asserting macro `{name}!`")));
                }
            }
            Resolution::Resolved(_) => {} // judged via the callee's own body
            Resolution::Fallback(_) | Resolution::External | Resolution::Ambiguous => {
                if alloc && ALLOC_METHODS.contains(&name) {
                    out.push((c.line, format!("allocating call `{name}`")));
                }
                if alloc
                    && ALLOC_CTORS.contains(&name)
                    && c.qualifier
                        .as_deref()
                        .is_some_and(|q| ALLOC_OWNERS.contains(&q))
                {
                    out.push((
                        c.line,
                        format!(
                            "allocating constructor `{}::{name}`",
                            c.qualifier.as_deref().unwrap_or_default()
                        ),
                    ));
                }
                if panic_any && PANIC_METHODS.contains(&name) {
                    out.push((c.line, format!("panicking call `.{name}()`")));
                }
            }
            Resolution::Local => {}
        }
    }
    if panic_strict {
        for &line in &facts.index_sites {
            out.push((
                line,
                "indexing expression (may panic out of bounds)".to_string(),
            ));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// `Owner::name` for diagnostics.
fn qualified(f: &items::FnItem) -> String {
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None => f.name.clone(),
    }
}

/// Reconstructs the BFS chain from `root` to `target` as display frames.
fn chain_frames(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    graph: &CallGraph,
    parent: &BTreeMap<usize, usize>,
    root: usize,
    target: usize,
) -> Vec<String> {
    if root == target {
        return Vec::new();
    }
    let mut path = vec![target];
    let mut cur = target;
    while let Some(&p) = parent.get(&cur) {
        path.push(p);
        if p == root {
            break;
        }
        cur = p;
    }
    path.reverse();
    path.iter()
        .map(|&id| {
            let (fi, k) = graph.locate(id);
            let f = &parsed[fi].fns[k];
            format!(
                "{} ({}:{})",
                qualified(f),
                files[fi].ctx.path.display(),
                f.line
            )
        })
        .collect()
}

/// Pass 3: registry consistency, literal cross-check, orphan detection.
fn metrics_pass(
    root: &Path,
    files: &[SourceFile],
    sources: &[String],
    allows: &[BTreeMap<u32, BTreeSet<String>>],
    consumed: &mut BTreeSet<(usize, u32, String)>,
    diagnostics: &mut Vec<Diagnostic>,
) -> io::Result<MetricRegistry> {
    let obs_idx = files
        .iter()
        .position(|f| f.ctx.path.ends_with(Path::new("core/src/obs.rs")));
    let Some(obs_idx) = obs_idx else {
        // Mini-workspaces (fixtures) without an observability layer skip
        // the metrics pass entirely.
        return Ok(MetricRegistry::default());
    };
    let trace_idx = files
        .iter()
        .position(|f| f.ctx.path.ends_with(Path::new("core/src/trace.rs")));

    // Per-file registries first — internal-consistency findings point at
    // the declaring file — then one merged registry for every cross-check
    // and for `--emit-registry`.
    let mut declaring: Vec<usize> = vec![obs_idx];
    declaring.extend(trace_idx);
    let mut reg = MetricRegistry::default();
    // Declaring file of each merged metric, parallel to `reg.metrics`.
    let mut decl_file: Vec<usize> = Vec::new();
    for &fi in &declaring {
        let part = registry::extract_registry(&sources[fi]);
        for (line, message) in registry::check_registry(&part) {
            diagnostics.push(Diagnostic {
                file: files[fi].ctx.path.clone(),
                line,
                pass: Pass::Metrics,
                message,
                chain: Vec::new(),
            });
        }
        decl_file.extend(std::iter::repeat_n(fi, part.metrics.len()));
        reg.merge(part);
    }
    // Cross-file collisions: a trace event may not reuse a metric name
    // (intra-file duplicates were already reported above).
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, m) in reg.metrics.iter().enumerate() {
        if m.name.is_empty() {
            continue;
        }
        match seen.get(m.name.as_str()) {
            Some(&prev) if decl_file[prev] != decl_file[i] => {
                diagnostics.push(Diagnostic {
                    file: files[decl_file[i]].ctx.path.clone(),
                    line: m.line,
                    pass: Pass::Metrics,
                    message: format!(
                        "name `{}` (`{}::{}`) is already declared in {}",
                        m.name,
                        m.kind,
                        m.variant,
                        files[decl_file[prev]].ctx.path.display()
                    ),
                    chain: Vec::new(),
                });
            }
            Some(_) => {}
            None => {
                seen.insert(m.name.as_str(), i);
            }
        }
    }

    // Literal cross-check over library sources…
    for (fi, src) in sources.iter().enumerate() {
        for (line, lit) in registry::unregistered_literals(src, &reg) {
            let waived = allows[fi]
                .get(&line)
                .is_some_and(|names| names.contains("metric-registry"));
            if waived {
                consumed.insert((fi, line, "metric-registry".to_string()));
                if let Some(prev) = line.checked_sub(1) {
                    consumed.insert((fi, prev, "metric-registry".to_string()));
                }
                continue;
            }
            diagnostics.push(Diagnostic {
                file: files[fi].ctx.path.clone(),
                line,
                pass: Pass::Metrics,
                message: format!("metric-shaped literal `\"{lit}\"` is not in the obs registry"),
                chain: Vec::new(),
            });
        }
    }
    // …and over CI workflow files (quoted strings in YAML / embedded
    // python), so bench-smoke's assertions cannot drift from the registry.
    let wf_dir = root.join(".github").join("workflows");
    if wf_dir.is_dir() {
        let mut wf: Vec<PathBuf> = fs::read_dir(&wf_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "yml" || e == "yaml"))
            .collect();
        wf.sort();
        for path in wf {
            let text = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            for (line, lit) in registry::unregistered_literals_text(&text, &reg) {
                diagnostics.push(Diagnostic {
                    file: rel.clone(),
                    line,
                    pass: Pass::Metrics,
                    message: format!(
                        "metric-shaped literal `\"{lit}\"` in CI is not in the obs registry"
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    // Orphan detection: variants never referenced outside their declaring
    // file (obs.rs for metrics, trace.rs for trace events).
    let mut referenced: BTreeSet<(String, String)> = BTreeSet::new();
    for (fi, src) in sources.iter().enumerate() {
        if declaring.contains(&fi) {
            continue;
        }
        referenced.extend(registry::variant_references(src));
    }
    for (i, m) in reg.metrics.iter().enumerate() {
        if referenced.contains(&(m.kind.clone(), m.variant.clone())) {
            continue;
        }
        let fi = decl_file[i];
        let waived = allows[fi]
            .get(&m.line)
            .is_some_and(|names| names.contains("metric-orphan"));
        if waived {
            consumed.insert((fi, m.line, "metric-orphan".to_string()));
            if let Some(prev) = m.line.checked_sub(1) {
                consumed.insert((fi, prev, "metric-orphan".to_string()));
            }
            continue;
        }
        diagnostics.push(Diagnostic {
            file: files[fi].ctx.path.clone(),
            line: m.line,
            pass: Pass::Metrics,
            message: format!(
                "orphaned metric `{}::{}` (`{}`): no reference outside its declaring file",
                m.kind, m.variant, m.name
            ),
            chain: Vec::new(),
        });
    }

    Ok(reg)
}

/// Pass 4: every `xtask-allow` must either suppress a lint finding, be
/// consumed by an analyzer pass, or it is stale; unknown names are errors.
fn stale_pass(
    files: &[SourceFile],
    sources: &[String],
    consumed: &BTreeSet<(usize, u32, String)>,
    diagnostics: &mut Vec<Diagnostic>,
) -> io::Result<()> {
    for (fi, src) in sources.iter().enumerate() {
        // Re-run the lint engine to learn which waivers it consumed.
        let mut lint_consumed: BTreeSet<(u32, String)> = BTreeSet::new();
        let _ = lint_file_consuming(&files[fi].ctx, src, &mut lint_consumed);

        for entry in collect_allow_entries(src) {
            let known = Rule::from_name(&entry.name).is_some()
                || ANALYZER_WAIVERS.contains(&entry.name.as_str());
            if !known {
                diagnostics.push(Diagnostic {
                    file: files[fi].ctx.path.clone(),
                    line: entry.line,
                    pass: Pass::StaleWaiver,
                    message: format!(
                        "`xtask-allow: {}` names no known rule or analyzer waiver",
                        entry.name
                    ),
                    chain: Vec::new(),
                });
                continue;
            }
            let used = lint_consumed.contains(&(entry.line, entry.name.clone()))
                || consumed.contains(&(fi, entry.line, entry.name.clone()));
            if !used {
                diagnostics.push(Diagnostic {
                    file: files[fi].ctx.path.clone(),
                    line: entry.line,
                    pass: Pass::StaleWaiver,
                    message: format!(
                        "stale waiver: `xtask-allow: {}` suppresses nothing on this line",
                        entry.name
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
    Ok(())
}
