//! The lint rules and the per-file checking engine.
//!
//! Rules operate on the token stream produced by [`crate::lexer`], with two
//! structural passes layered on top:
//!
//! * **Test-region skipping** — items annotated `#[cfg(test)]` / `#[test]`
//!   (and whole `tests/`, `benches/`, `examples/` trees, handled by
//!   [`crate::workspace`]) are exempt from every rule: the project bans
//!   `unwrap()` in *library* code, not in assertions about it.
//! * **Allow-listing** — a comment `// xtask-allow: rule1, rule2` grants an
//!   exemption for the named rules on the comment's own line *and* the line
//!   after it, so both trailing and preceding placements work. Prose after a
//!   rule name is permitted (`// xtask-allow: no-panic (writer is a Vec)`).

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// The project-specific lint rules `cargo xtask lint` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `unwrap()` / `expect()` / `panic!` family in library code; fallible
    /// paths must surface `GraphError` (or a crate-local error) instead.
    /// `assert!` / `debug_assert!` are sanctioned invariant guards and are
    /// deliberately not flagged.
    NoPanic,
    /// No `as` casts to integer types in the numeric core (`core`, `hll`,
    /// `temporal-graph`): timestamp/window/node-id arithmetic must use
    /// `From`/`try_from` or carry an explicit allow justifying losslessness.
    NoLossyCast,
    /// No default-SipHash `HashMap`/`HashSet` in `core`/`hll` hot paths; use
    /// the `FastMap`/`FastSet` aliases exported by `infprop-core`.
    NoDefaultHashmap,
    /// Every `pub` item must carry a doc comment (`///` or `#[doc]`).
    PubDocs,
    /// Every crate root must declare `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// No `println!`-family output in library crates; printing is the CLI's
    /// job, libraries return data.
    NoPrint,
    /// No raw `std::time::Instant` / `SystemTime` in library code: timing
    /// belongs to the `infprop_core::obs` recorder (span timers), bench
    /// code, or tests, so the hot paths stay clock-free by construction.
    NoRawTiming,
}

/// The single source of truth pairing each [`Rule`] with its kebab-case
/// name, in discriminant order. `name()`, `from_name()` and `all()` all
/// derive from this table, so adding a rule means adding exactly one row
/// (the `rule_table_is_consistent` test pins rows to discriminants).
const RULE_TABLE: [(Rule, &str); 7] = [
    (Rule::NoPanic, "no-panic"),
    (Rule::NoLossyCast, "no-lossy-cast"),
    (Rule::NoDefaultHashmap, "no-default-hashmap"),
    (Rule::PubDocs, "pub-docs"),
    (Rule::ForbidUnsafe, "forbid-unsafe"),
    (Rule::NoPrint, "no-print"),
    (Rule::NoRawTiming, "no-raw-timing"),
];

impl Rule {
    /// The kebab-case rule name used in diagnostics and `xtask-allow`.
    pub fn name(self) -> &'static str {
        RULE_TABLE[self as usize].1
    }

    /// Parses a rule name as written in an `xtask-allow` comment.
    pub fn from_name(name: &str) -> Option<Rule> {
        RULE_TABLE
            .iter()
            .find(|(_, n)| *n == name)
            .map(|&(rule, _)| rule)
    }

    /// All rules, for iteration.
    pub fn all() -> [Rule; RULE_TABLE.len()] {
        let mut out = [Rule::NoPanic; RULE_TABLE.len()];
        let mut i = 0;
        while i < RULE_TABLE.len() {
            out[i] = RULE_TABLE[i].0;
            i += 1;
        }
        out
    }
}

/// One diagnostic: a rule violated at a file:line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path of the offending file (workspace-relative when produced by
    /// [`crate::workspace::lint_workspace`]).
    pub file: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Per-file lint configuration, derived from the file's crate and role by
/// [`crate::workspace`].
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Path used in diagnostics.
    pub path: PathBuf,
    /// The rules active for this file.
    pub rules: Vec<Rule>,
    /// Rules for which `xtask-allow` waivers are **ignored** in this file:
    /// violations fire unconditionally. Used for files whose contract is
    /// load-bearing (e.g. `no-raw-timing` in `core/src/delta.rs`, whose
    /// append/compact hot path must stay clock-free by construction).
    pub unwaivable: Vec<Rule>,
    /// Whether this file is a crate root (`src/lib.rs` / `src/main.rs`),
    /// which is where [`Rule::ForbidUnsafe`] applies.
    pub is_crate_root: bool,
}

const INT_TARGETS: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PRINT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];

/// One `xtask-allow` waiver as written in the source: the comment's line
/// and the raw rule name it grants. Collected by
/// [`collect_allow_entries`] for the analyzer's stale-waiver pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The rule name as written (may be unknown — the stale pass flags it).
    pub name: String,
}

/// Strips parenthesized justification prose from the tail of an
/// `xtask-allow:` comment, so commas inside a justification — as in
/// `no-lossy-cast (exact below 2^53, saturating)` — are not mistaken for
/// name separators (and a rule name quoted inside one is not a grant).
pub(crate) fn strip_justifications(rest: &str) -> String {
    let mut out = String::with_capacity(rest.len());
    let mut depth = 0usize;
    for c in rest.chars() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Every waiver written in `source`, in order. Only plain `//` comments
/// count: an `xtask-allow:` inside a doc comment is prose (an example in
/// documentation), not a grant — matching [`collect_allows`].
pub fn collect_allow_entries(source: &str) -> Vec<AllowEntry> {
    let toks = lex(source);
    let mut out = Vec::new();
    for tok in toks
        .iter()
        .filter(|t| t.is_comment() && !t.is_doc_comment())
    {
        let Some(idx) = tok.text.find("xtask-allow:") else {
            continue;
        };
        let rest = strip_justifications(&tok.text[idx + "xtask-allow:".len()..]);
        for item in rest.split(',') {
            let name = item.split_whitespace().next().unwrap_or("");
            if !name.is_empty() {
                out.push(AllowEntry {
                    line: tok.line,
                    name: name.to_string(),
                });
            }
        }
    }
    out
}

/// Lints one file's source under the given context.
pub fn lint_file(ctx: &FileContext, source: &str) -> Vec<Violation> {
    lint_file_consuming(ctx, source, &mut BTreeSet::new())
}

/// [`lint_file`], additionally recording into `consumed` every
/// `(waiver-comment line, rule name)` pair whose allowance actually
/// suppressed a violation — the ground truth the analyzer's stale-waiver
/// pass compares [`collect_allow_entries`] against.
pub fn lint_file_consuming(
    ctx: &FileContext,
    source: &str,
    consumed: &mut BTreeSet<(u32, String)>,
) -> Vec<Violation> {
    let toks = lex(source);
    let allows = collect_allows(&toks);
    // Indices (into `toks`) of non-comment tokens: the structural view.
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let skipped = test_region_mask(&toks, &code);

    let mut out = Vec::new();
    let mut report = |rule: Rule, line: u32, mut message: String| {
        let waivable = !ctx.unwaivable.contains(&rule);
        let allowed = waivable && allows.get(&line).is_some_and(|set| set.contains(&rule));
        if allowed {
            // The grant may sit on the violation's own line or the line
            // above; credit both placements as used.
            consumed.insert((line, rule.name().to_string()));
            if let Some(prev) = line.checked_sub(1) {
                consumed.insert((prev, rule.name().to_string()));
            }
        } else {
            if !waivable && allows.get(&line).is_some_and(|set| set.contains(&rule)) {
                message.push_str(" (xtask-allow is ignored: this rule is unwaivable here)");
            }
            out.push(Violation {
                file: ctx.path.clone(),
                line,
                rule,
                message,
            });
        }
    };

    for (ci, &ti) in code.iter().enumerate() {
        if skipped[ci] {
            continue;
        }
        let tok = &toks[ti];
        let next = code.get(ci + 1).map(|&j| &toks[j]);
        let prev = ci.checked_sub(1).map(|p| &toks[code[p]]);

        if tok.kind != TokenKind::Ident {
            continue;
        }

        if ctx.rules.contains(&Rule::NoPanic) {
            let is_method_call = PANIC_METHODS.contains(&tok.text.as_str())
                && next.is_some_and(|n| n.is_punct('('))
                && prev.is_some_and(|p| p.is_punct('.'));
            if is_method_call {
                report(
                    Rule::NoPanic,
                    tok.line,
                    format!(
                        "`.{}()` in library code; return a `GraphError` (or allow with \
                         `// xtask-allow: no-panic` and a justification)",
                        tok.text
                    ),
                );
            }
            if PANIC_MACROS.contains(&tok.text.as_str()) && next.is_some_and(|n| n.is_punct('!')) {
                report(
                    Rule::NoPanic,
                    tok.line,
                    format!(
                        "`{}!` in library code; return a `GraphError` instead",
                        tok.text
                    ),
                );
            }
        }

        if ctx.rules.contains(&Rule::NoLossyCast)
            && tok.is_ident("as")
            && next.is_some_and(|n| {
                n.kind == TokenKind::Ident && INT_TARGETS.contains(&n.text.as_str())
            })
        {
            let target = next.map(|n| n.text.as_str()).unwrap_or_default();
            report(
                Rule::NoLossyCast,
                tok.line,
                format!(
                    "`as {target}` cast in timestamp/id arithmetic; use `From`/`try_from`, \
                     or allow with a comment proving the cast lossless"
                ),
            );
        }

        if ctx.rules.contains(&Rule::NoDefaultHashmap)
            && (tok.is_ident("HashMap") || tok.is_ident("HashSet"))
        {
            report(
                Rule::NoDefaultHashmap,
                tok.line,
                format!(
                    "default-SipHash `{}` in a hot-path crate; use `FastMap`/`FastSet` \
                     from `infprop-core`",
                    tok.text
                ),
            );
        }

        if ctx.rules.contains(&Rule::NoPrint)
            && PRINT_MACROS.contains(&tok.text.as_str())
            && next.is_some_and(|n| n.is_punct('!'))
        {
            report(
                Rule::NoPrint,
                tok.line,
                format!(
                    "`{}!` in library code; return data and let the CLI print",
                    tok.text
                ),
            );
        }

        if ctx.rules.contains(&Rule::NoRawTiming)
            && (tok.is_ident("Instant") || tok.is_ident("SystemTime"))
        {
            report(
                Rule::NoRawTiming,
                tok.line,
                format!(
                    "raw `{}` in library code; route timing through the \
                     `infprop_core::obs` span recorder (or allow with \
                     `// xtask-allow: no-raw-timing` and a justification)",
                    tok.text
                ),
            );
        }

        if ctx.rules.contains(&Rule::PubDocs) && tok.is_ident("pub") {
            // `pub(crate)`-style restricted visibility is not public API;
            // `pub use` re-exports inherit the re-exported item's docs;
            // tuple-struct fields (`pub` preceded by `(` or `,`) and file
            // module declarations (`pub mod x;`, documented by `//!` inside
            // the module file) follow rustc's `missing_docs` semantics.
            let is_tuple_field = prev.is_some_and(|p| p.is_punct('(') || p.is_punct(','));
            let is_file_mod = next.is_some_and(|n| n.is_ident("mod"))
                && code.get(ci + 3).is_some_and(|&j| toks[j].is_punct(';'));
            let exempt = next.is_none()
                || next.is_some_and(|n| n.is_punct('(') || n.is_ident("use"))
                || is_tuple_field
                || is_file_mod;
            if !exempt && !has_doc_before(&toks, ti) {
                let item = item_name_after(&toks, &code, ci);
                report(
                    Rule::PubDocs,
                    tok.line,
                    format!("public item `{item}` lacks a doc comment"),
                );
            }
        }
    }

    if ctx.is_crate_root
        && ctx.rules.contains(&Rule::ForbidUnsafe)
        && !has_forbid_unsafe(&toks, &code)
    {
        report(
            Rule::ForbidUnsafe,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Parses every `xtask-allow:` comment into a line → rules map. An allowance
/// covers the comment's starting line and the immediately following line.
/// Doc comments do not grant: an `xtask-allow:` inside `///`/`//!` text is
/// documentation prose, not a waiver.
fn collect_allows(toks: &[Token]) -> BTreeMap<u32, BTreeSet<Rule>> {
    let mut map: BTreeMap<u32, BTreeSet<Rule>> = BTreeMap::new();
    for tok in toks
        .iter()
        .filter(|t| t.is_comment() && !t.is_doc_comment())
    {
        let Some(idx) = tok.text.find("xtask-allow:") else {
            continue;
        };
        let rest = strip_justifications(&tok.text[idx + "xtask-allow:".len()..]);
        // Rule names are comma-separated; anything after the name within an
        // item (whitespace-delimited) is justification prose.
        for item in rest.split(',') {
            let name = item.split_whitespace().next().unwrap_or("");
            if let Some(rule) = Rule::from_name(name) {
                map.entry(tok.line).or_default().insert(rule);
                map.entry(tok.line + 1).or_default().insert(rule);
            }
        }
    }
    map
}

/// Marks code tokens belonging to `#[cfg(test)]` / `#[test]` items.
///
/// Returns a mask parallel to `code`. When an attribute group mentions the
/// bare identifier `test` (and not `not`, so `#[cfg(not(test))]` stays
/// linted), the attribute and the item it annotates — through the matching
/// close brace, or the first `;` for brace-less items — are masked out.
pub(crate) fn test_region_mask(toks: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut ci = 0usize;
    while ci < code.len() {
        let t = &toks[code[ci]];
        if t.is_punct('#') && code.get(ci + 1).is_some_and(|&j| toks[j].is_punct('[')) {
            if let Some(close) = matching(toks, code, ci + 1, '[', ']') {
                let attr_is_test = {
                    let mut has_test = false;
                    let mut has_not = false;
                    for &j in &code[ci + 2..close] {
                        if toks[j].is_ident("test") {
                            has_test = true;
                        }
                        if toks[j].is_ident("not") {
                            has_not = true;
                        }
                    }
                    has_test && !has_not
                };
                if attr_is_test {
                    let end = item_end(toks, code, close + 1).unwrap_or(code.len() - 1);
                    for m in mask.iter_mut().take(end + 1).skip(ci) {
                        *m = true;
                    }
                    ci = end + 1;
                    continue;
                }
                // Non-test attribute: step past it so its contents (e.g.
                // `#[derive(Hash)]`… or doc attrs) are scanned normally.
                ci = close + 1;
                continue;
            }
        }
        ci += 1;
    }
    mask
}

/// Finds the close index (in `code` coordinates) matching the opener at
/// `open_ci`.
pub(crate) fn matching(
    toks: &[Token],
    code: &[usize],
    open_ci: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (ci, &j) in code.iter().enumerate().skip(open_ci) {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(ci);
            }
        }
    }
    None
}

/// The end (in `code` coordinates) of the item starting at `start_ci`:
/// the matching `}` of its first brace, or the first `;` if one comes first
/// (use declarations, type aliases, consts). Skips further attributes.
fn item_end(toks: &[Token], code: &[usize], start_ci: usize) -> Option<usize> {
    let mut ci = start_ci;
    let mut depth = 0usize;
    while ci < code.len() {
        let t = &toks[code[ci]];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(ci);
            }
        } else if t.is_punct(';') && depth == 0 {
            return Some(ci);
        }
        ci += 1;
    }
    None
}

/// Does a doc comment or `#[doc…]` attribute immediately precede (modulo
/// other attributes and plain comments) the token at full-index `ti`?
fn has_doc_before(toks: &[Token], ti: usize) -> bool {
    let mut i = ti;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        if t.is_doc_comment() {
            return true;
        }
        if t.is_comment() {
            continue; // plain comments between docs and the item are fine
        }
        if t.is_punct(']') {
            // Walk back over the attribute group to its `[`.
            let mut depth = 1usize;
            let mut j = i;
            let mut first_ident: Option<&str> = None;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                } else if toks[j].kind == TokenKind::Ident {
                    first_ident = Some(&toks[j].text);
                }
            }
            // `#[doc = "…"]` / `#[doc(…)]` / `#[cfg_attr(…, doc …)]` count
            // as documentation; the first identifier inside the group is the
            // attribute path head.
            if first_ident == Some("doc") {
                return true;
            }
            // Step over the `#` introducing the attribute and keep looking.
            if j > 0 && toks[j - 1].is_punct('#') {
                i = j - 1;
                continue;
            }
            return false;
        }
        return false;
    }
    false
}

/// Best-effort name of the item a `pub` at code-index `ci` introduces, for
/// diagnostics: the first identifier that is not a declaration keyword.
fn item_name_after(toks: &[Token], code: &[usize], ci: usize) -> String {
    const KEYWORDS: [&str; 12] = [
        "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "unsafe", "async",
        "extern", "impl",
    ];
    for &j in code.iter().skip(ci + 1).take(6) {
        let t = &toks[j];
        if t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            return t.text.clone();
        }
    }
    "<unnamed>".to_string()
}

/// Looks for `#![forbid(unsafe_code)]` (possibly with more lints in the
/// list) anywhere in the token stream.
fn has_forbid_unsafe(toks: &[Token], code: &[usize]) -> bool {
    for (ci, &j) in code.iter().enumerate() {
        if toks[j].is_ident("forbid")
            && ci >= 3
            && toks[code[ci - 1]].is_punct('[')
            && toks[code[ci - 2]].is_punct('!')
            && toks[code[ci - 3]].is_punct('#')
            && code.get(ci + 1).is_some_and(|&k| toks[k].is_punct('('))
        {
            if let Some(close) = matching(toks, code, ci + 1, '(', ')') {
                if code[ci + 2..close]
                    .iter()
                    .any(|&k| toks[k].is_ident("unsafe_code"))
                {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rules: Vec<Rule>, root: bool) -> FileContext {
        FileContext {
            path: PathBuf::from("test.rs"),
            rules,
            unwaivable: Vec::new(),
            is_crate_root: root,
        }
    }

    fn fired(src: &str, rules: Vec<Rule>) -> Vec<(Rule, u32)> {
        lint_file(&ctx(rules, false), src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn rule_table_is_consistent() {
        // Rows sit at their discriminant index, so `name()`'s direct index
        // is safe, and the name/from_name pair round-trips for every rule.
        for (i, &(rule, name)) in RULE_TABLE.iter().enumerate() {
            assert_eq!(rule as usize, i, "RULE_TABLE row {i} out of order");
            assert_eq!(rule.name(), name);
            assert_eq!(Rule::from_name(name), Some(rule));
        }
        assert_eq!(Rule::all().len(), RULE_TABLE.len());
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn allow_entries_collected_with_unknown_names() {
        let src = "fn f() {} // xtask-allow: no-panic, not-a-rule (prose)\n\
                   /// doc example: // xtask-allow: no-print\n\
                   fn g() {}\n";
        let entries = collect_allow_entries(src);
        assert_eq!(
            entries,
            vec![
                AllowEntry {
                    line: 1,
                    name: "no-panic".into()
                },
                AllowEntry {
                    line: 1,
                    name: "not-a-rule".into()
                },
            ],
            "doc-comment mentions must not count as waivers"
        );
    }

    #[test]
    fn consumed_allows_are_reported() {
        let src = "// xtask-allow: no-panic (fixture)\nfn f() { x.unwrap(); }";
        let mut consumed = BTreeSet::new();
        let v = lint_file_consuming(&ctx(vec![Rule::NoPanic], false), src, &mut consumed);
        assert!(v.is_empty());
        assert!(consumed.contains(&(1, "no-panic".to_string())));
    }

    #[test]
    fn unwrap_flagged() {
        assert_eq!(
            fired("fn f() { x.unwrap(); }", vec![Rule::NoPanic]),
            [(Rule::NoPanic, 1)]
        );
    }

    #[test]
    fn unwrap_or_not_flagged() {
        assert!(fired("fn f() { x.unwrap_or(0); }", vec![Rule::NoPanic]).is_empty());
    }

    #[test]
    fn panic_macro_flagged_but_assert_allowed() {
        let src = "fn f() { assert!(x > 0); debug_assert!(y); panic!(\"no\"); }";
        assert_eq!(fired(src, vec![Rule::NoPanic]), [(Rule::NoPanic, 1)]);
    }

    #[test]
    fn allow_comment_same_line_and_next_line() {
        let same = "fn f() { x.unwrap(); } // xtask-allow: no-panic (test fixture)";
        assert!(fired(same, vec![Rule::NoPanic]).is_empty());
        let prev = "// xtask-allow: no-panic\nfn f() { x.unwrap(); }";
        assert!(fired(prev, vec![Rule::NoPanic]).is_empty());
        let wrong_rule = "// xtask-allow: no-print\nfn f() { x.unwrap(); }";
        assert_eq!(fired(wrong_rule, vec![Rule::NoPanic]).len(), 1);
    }

    #[test]
    fn cfg_test_region_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(fired(src, vec![Rule::NoPanic]).is_empty());
        let not_test = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }";
        assert_eq!(fired(not_test, vec![Rule::NoPanic]).len(), 1);
    }

    #[test]
    fn code_after_test_mod_still_linted() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }\nfn lib() { b.unwrap(); }";
        assert_eq!(fired(src, vec![Rule::NoPanic]), [(Rule::NoPanic, 3)]);
    }

    #[test]
    fn comment_and_string_not_flagged() {
        let src = "// call .unwrap() never\nfn f() { let s = \"panic!\"; }";
        assert!(fired(src, vec![Rule::NoPanic]).is_empty());
    }

    #[test]
    fn lossy_cast_flagged_float_exempt() {
        let src = "fn f(x: i64) { let a = x as usize; let b = x as f64; }";
        assert_eq!(
            fired(src, vec![Rule::NoLossyCast]),
            [(Rule::NoLossyCast, 1)]
        );
    }

    #[test]
    fn default_hashmap_flagged() {
        let src = "use std::collections::HashMap;\nfn f() { let m: FastHashMap<u8,u8>; }";
        assert_eq!(
            fired(src, vec![Rule::NoDefaultHashmap]),
            [(Rule::NoDefaultHashmap, 1)]
        );
    }

    #[test]
    fn print_macros_flagged() {
        let src = "fn f() { println!(\"x\"); write!(w, \"y\"); }";
        assert_eq!(fired(src, vec![Rule::NoPrint]), [(Rule::NoPrint, 1)]);
    }

    #[test]
    fn pub_docs() {
        let undoc = "pub fn f() {}";
        assert_eq!(fired(undoc, vec![Rule::PubDocs]).len(), 1);
        let doc = "/// Does f.\npub fn f() {}";
        assert!(fired(doc, vec![Rule::PubDocs]).is_empty());
        let attr_between = "/// Doc.\n#[inline]\npub fn f() {}";
        assert!(fired(attr_between, vec![Rule::PubDocs]).is_empty());
        let doc_attr = "#[doc = \"hi\"]\npub fn f() {}";
        assert!(fired(doc_attr, vec![Rule::PubDocs]).is_empty());
        let restricted = "pub(crate) fn f() {}";
        assert!(fired(restricted, vec![Rule::PubDocs]).is_empty());
        let reexport = "pub use foo::Bar;";
        assert!(fired(reexport, vec![Rule::PubDocs]).is_empty());
        let field = "/// S.\npub struct S {\n    pub x: u32,\n}";
        assert_eq!(fired(field, vec![Rule::PubDocs]).len(), 1);
        let tuple_field = "/// Id.\npub struct Id(pub u32);";
        assert!(fired(tuple_field, vec![Rule::PubDocs]).is_empty());
        let file_mod = "pub mod engine;";
        assert!(fired(file_mod, vec![Rule::PubDocs]).is_empty());
        let inline_mod = "pub mod prelude { }";
        assert_eq!(fired(inline_mod, vec![Rule::PubDocs]).len(), 1);
    }

    #[test]
    fn forbid_unsafe_on_roots() {
        let with = "#![forbid(unsafe_code)]\nfn main() {}";
        let without = "fn main() {}";
        let v = lint_file(&ctx(vec![Rule::ForbidUnsafe], true), with);
        assert!(v.is_empty());
        let v = lint_file(&ctx(vec![Rule::ForbidUnsafe], true), without);
        assert_eq!(v.len(), 1);
        // Non-root files do not need the attribute.
        let v = lint_file(&ctx(vec![Rule::ForbidUnsafe], false), without);
        assert!(v.is_empty());
    }

    #[test]
    fn raw_timing_flagged() {
        let src = "use std::time::Instant;\nfn f() { let t = SystemTime::now(); }";
        assert_eq!(
            fired(src, vec![Rule::NoRawTiming]),
            [(Rule::NoRawTiming, 1), (Rule::NoRawTiming, 2)]
        );
    }

    #[test]
    fn raw_timing_waivable_and_test_exempt() {
        let waived = "// xtask-allow: no-raw-timing (bench harness)\nlet t0 = Instant::now();";
        assert!(fired(waived, vec![Rule::NoRawTiming]).is_empty());
        let test_code = "#[cfg(test)]\nmod tests { fn t() { let _ = Instant::now(); } }";
        assert!(fired(test_code, vec![Rule::NoRawTiming]).is_empty());
        // Mentions in comments and strings never fire.
        let prose = "// Instant is banned here\nfn f() { let s = \"SystemTime\"; }";
        assert!(fired(prose, vec![Rule::NoRawTiming]).is_empty());
    }

    #[test]
    fn unwaivable_rule_ignores_allow_comments() {
        let src = "// xtask-allow: no-raw-timing (should not help)\nlet t0 = Instant::now();";
        let mut c = ctx(vec![Rule::NoRawTiming], false);
        c.unwaivable = vec![Rule::NoRawTiming];
        let v = lint_file(&c, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("unwaivable"), "{}", v[0].message);
        // Other rules in the same file stay waivable.
        let src = "// xtask-allow: no-panic (fixture)\nfn f() { x.unwrap(); }";
        assert!(lint_file(&c, src).is_empty());
        // Test regions stay exempt even from unwaivable rules.
        let test_code = "#[cfg(test)]\nmod tests { fn t() { let _ = Instant::now(); } }";
        assert!(lint_file(&c, test_code).is_empty());
    }

    #[test]
    fn multiple_allows_one_comment() {
        let src = "fn f() { let m: HashMap<u8, u8> = x.unwrap(); } // xtask-allow: no-panic, no-default-hashmap";
        assert!(fired(src, vec![Rule::NoPanic, Rule::NoDefaultHashmap]).is_empty());
    }
}
