#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Workspace automation for the `infprop` project.
//!
//! Two subcommands:
//!
//! - `lint` — a project-specific static-analysis pass enforcing
//!   token-level rules clippy cannot express (no panicking paths in
//!   library code, no lossy timestamp casts, no slow default hashers on
//!   the IRS hot path, a documented public API, and
//!   `#![forbid(unsafe_code)]` everywhere).
//! - `analyze` — call-graph-aware semantic passes: functions annotated
//!   `// xtask-contract: alloc-free | no-panic | kernel` are verified
//!   *transitively* against allocation and panic constructs, the metric
//!   registry in `obs.rs` is cross-checked against every metric-shaped
//!   string literal in the workspace and CI, and stale `xtask-allow`
//!   waivers are flagged.
//!
//! Run them as `cargo xtask lint` / `cargo xtask analyze` (the alias
//! lives in `.cargo/config.toml`). Each finding prints as
//! `path:line: [rule] message` and the process exits non-zero if anything
//! fired, so CI can gate on both.
//!
//! Individual findings can be waived with an inline comment naming the
//! rule(s), on the offending line or the line before:
//!
//! ```text
//! let n = u32::from_le_bytes(buf) as usize; // xtask-allow: no-lossy-cast (widening on ≥32-bit)
//! ```
//!
//! The engine is dependency-free by design: [`lexer`] is a hand-rolled
//! token scanner with just enough Rust lexical structure (comments, string
//! fences, raw identifiers, lifetimes) to make the token-sequence rules in
//! [`rules`] sound, [`workspace`] maps each crate to the rule set it must
//! satisfy, [`items`] layers a brace-aware item parser on the token
//! stream, [`callgraph`] name-resolves an intra-workspace call graph over
//! the parsed items, [`registry`] extracts the metric catalogue from
//! `obs.rs`, and [`analyze`] runs the semantic passes over all of it.

pub mod lexer;
pub mod rules;
pub mod workspace;

pub mod analyze;
pub mod callgraph;
pub mod items;
pub mod registry;

pub use analyze::{analyze_workspace, AnalysisReport, Diagnostic, Pass};
pub use rules::{lint_file, FileContext, Rule, Violation};
pub use workspace::{find_workspace_root, lint_workspace};
