#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Workspace automation for the `infprop` project.
//!
//! The only subcommand today is `lint`: a project-specific static-analysis
//! pass enforcing rules clippy cannot express — the paper's structural
//! invariants start in the source code (no panicking paths in library code,
//! no lossy timestamp casts, no slow default hashers on the IRS hot path,
//! a documented public API, and `#![forbid(unsafe_code)]` everywhere).
//!
//! Run it as `cargo xtask lint` (the alias lives in `.cargo/config.toml`).
//! Each violation prints as `path:line: [rule] message` and the process
//! exits non-zero if any rule fired, so CI can gate on it.
//!
//! Individual findings can be waived with an inline comment naming the
//! rule(s), on the offending line or the line before:
//!
//! ```text
//! let n = u32::from_le_bytes(buf) as usize; // xtask-allow: no-lossy-cast (widening on ≥32-bit)
//! ```
//!
//! The engine is dependency-free by design: [`lexer`] is a hand-rolled
//! token scanner with just enough Rust lexical structure (comments, string
//! fences, raw identifiers, lifetimes) to make the token-sequence rules in
//! [`rules`] sound, and [`workspace`] maps each crate to the rule set it
//! must satisfy.

pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{lint_file, FileContext, Rule, Violation};
pub use workspace::{find_workspace_root, lint_workspace};
