//! A brace-aware item parser layered on [`crate::lexer`].
//!
//! The semantic passes in [`crate::analyze`] need more structure than the
//! flat token stream the lint rules use: which function a token belongs to,
//! which `impl` block owns a method, what the declared parameter types are,
//! and which contract comments (`// xtask-contract: alloc-free`) annotate an
//! item. This module recovers exactly that much structure — function items
//! with signature/body spans, impl blocks with associated-type bindings
//! (`type Union = NodeBitset;`), struct field types, and trait blocks — by
//! tracking brace depth over the code-token view.
//!
//! It is deliberately *not* a Rust parser: expressions inside bodies stay
//! token soup (the call-graph pass re-scans them), generics are skipped
//! wholesale, and anything unrecognized is stepped over. The contract is
//! best-effort extraction that never panics on valid Rust and degrades to
//! "fewer items found" rather than wrong spans.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{matching, test_region_mask};
use std::collections::BTreeMap;

/// A contract a function item declares via `// xtask-contract: …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Contract {
    /// The function (and everything it transitively calls inside the
    /// workspace) must not allocate: no `Vec`/`Box`/`String` construction,
    /// no growth methods, no `vec!`/`format!`.
    AllocFree,
    /// The function must be transitively panic-free: no `unwrap`/`expect`,
    /// no `panic!`-family macros, no `assert!`-family, no indexing.
    NoPanic,
    /// Hot-path kernel: [`Contract::AllocFree`] plus `unwrap`/`expect` and
    /// `panic!`-family bans, but indexing and `assert!` are permitted
    /// (kernels index arenas and guard invariants).
    Kernel,
}

/// The single source of truth pairing each [`Contract`] with its name in
/// `xtask-contract:` comments, mirroring the rule table in [`crate::rules`].
const CONTRACT_TABLE: [(Contract, &str); 3] = [
    (Contract::AllocFree, "alloc-free"),
    (Contract::NoPanic, "no-panic"),
    (Contract::Kernel, "kernel"),
];

impl Contract {
    /// The contract's name as written in `xtask-contract:` comments.
    pub fn name(self) -> &'static str {
        CONTRACT_TABLE[self as usize].1
    }

    /// Parses a contract name from an `xtask-contract:` comment.
    pub fn from_name(name: &str) -> Option<Contract> {
        CONTRACT_TABLE
            .iter()
            .find(|(_, n)| *n == name)
            .map(|&(c, _)| c)
    }
}

/// One parameter of a function signature.
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding name (`self` for receivers).
    pub name: String,
    /// The resolved head type name, when the type is a plain (possibly
    /// referenced) path: `&mut Self::Union` with an impl binding
    /// `type Union = NodeBitset` yields `NodeBitset`; `&[u8]`, generics and
    /// `impl Trait` yield `None`.
    pub ty: Option<String>,
}

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The owning type for methods (`impl NodeBitset` → `NodeBitset`; for
    /// trait impls the *implementing* type, for trait declarations the
    /// trait's name). `None` for free functions.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-index range `[start, end]` of the whole item: `fn` keyword
    /// through closing `}` (or `;` for bodyless trait methods).
    pub span: (usize, usize),
    /// Code-index range of the body's `{` … `}`, if the item has a body.
    pub body: Option<(usize, usize)>,
    /// Contracts declared on this item, sorted and deduplicated.
    pub contracts: Vec<Contract>,
    /// Unknown names written in this item's `xtask-contract:` comments,
    /// with the comment line — surfaced as diagnostics by the analyzer.
    pub unknown_contracts: Vec<(u32, String)>,
    /// Parameters in declaration order (receiver included).
    pub params: Vec<Param>,
    /// Associated-type bindings inherited from the enclosing impl block
    /// (`type Union = NodeBitset;` → `Union` ↦ `NodeBitset`).
    pub assoc_types: BTreeMap<String, String>,
    /// Whether the item sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test_region: bool,
}

/// Field name → head type name for one `struct` with named fields.
pub type FieldTypes = BTreeMap<String, String>;

/// Everything the parser recovered from one source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// The full token stream, comments included.
    pub toks: Vec<Token>,
    /// Indices (into `toks`) of non-comment tokens.
    pub code: Vec<usize>,
    /// All function items found, in source order.
    pub fns: Vec<FnItem>,
    /// Struct name → field types, for receiver resolution of
    /// `self.field.method()` call sites.
    pub structs: BTreeMap<String, FieldTypes>,
}

/// Parses one file's source into items. Never fails: unparseable regions
/// yield fewer items, not errors.
pub fn parse_file(source: &str) -> ParsedFile {
    let toks = lex(source);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mask = test_region_mask(&toks, &code);
    let mut parser = Parser {
        toks: &toks,
        code: &code,
        mask: &mask,
        fns: Vec::new(),
        structs: BTreeMap::new(),
    };
    parser.scan(0, code.len(), None, &BTreeMap::new());
    let (fns, structs) = (parser.fns, parser.structs);
    ParsedFile {
        toks,
        code,
        fns,
        structs,
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    code: &'a [usize],
    mask: &'a [bool],
    fns: Vec<FnItem>,
    structs: BTreeMap<String, FieldTypes>,
}

/// Qualifiers that may precede `fn` and are stepped over when walking
/// backward to find contract comments.
const FN_QUALIFIERS: [&str; 8] = [
    "pub", "const", "async", "unsafe", "extern", "crate", "super", "default",
];

impl Parser<'_> {
    fn tok(&self, ci: usize) -> &Token {
        &self.toks[self.code[ci]]
    }

    /// Scans `[start, end)` at item level, collecting fns/structs. `owner`
    /// and `assoc` describe the enclosing impl/trait block, if any.
    fn scan(
        &mut self,
        start: usize,
        end: usize,
        owner: Option<&str>,
        assoc: &BTreeMap<String, String>,
    ) {
        let mut ci = start;
        while ci < end {
            let t = self.tok(ci);
            if t.is_punct('#') && ci + 1 < end && self.tok(ci + 1).is_punct('[') {
                // Attribute (outer or inner): skip the group so `derive(…)`
                // contents are not mistaken for items.
                let close = matching(self.toks, self.code, ci + 1, '[', ']');
                ci = close.map_or(end, |c| c + 1);
                continue;
            }
            if t.kind != TokenKind::Ident {
                ci += 1;
                continue;
            }
            match t.text.as_str() {
                "impl" if owner.is_none() => ci = self.impl_block(ci, end),
                "trait" if owner.is_none() => ci = self.trait_block(ci, end),
                "fn" => ci = self.fn_item(ci, end, owner, assoc),
                "struct" if owner.is_none() => ci = self.struct_item(ci, end),
                "mod" => {
                    // Inline module: descend into its body at item level.
                    if let Some(open) = self.find_punct(ci, end, '{', ';') {
                        match matching(self.toks, self.code, open, '{', '}') {
                            Some(close) => {
                                self.scan(open + 1, close, owner, assoc);
                                ci = close + 1;
                            }
                            None => ci = end,
                        }
                    } else {
                        ci += 1; // `mod name;` — find_punct hit the `;`
                        while ci < end && !self.tok(ci - 1).is_punct(';') {
                            ci += 1;
                        }
                    }
                }
                _ => ci += 1,
            }
        }
    }

    /// The first occurrence of `want` at depth 0 (w.r.t. `(<[{`) in
    /// `[from, end)`, or `None` if `stop` is seen first. The `<`/`>` depth
    /// uses an arrow guard so `-> T` does not unbalance generics.
    fn find_punct(&self, from: usize, end: usize, want: char, stop: char) -> Option<usize> {
        let mut depth = 0i32;
        let mut ci = from;
        while ci < end {
            let t = self.tok(ci);
            if t.kind == TokenKind::Punct {
                let c = t.text.chars().next().unwrap_or(' ');
                if c == want && depth <= 0 {
                    return Some(ci);
                }
                if c == stop && depth <= 0 {
                    return None;
                }
                match c {
                    '(' | '[' | '<' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '>' => {
                        // `->` is an arrow, not a generic close.
                        let arrow = ci > from && self.tok(ci - 1).is_punct('-');
                        if !arrow {
                            depth -= 1;
                        }
                    }
                    _ => {}
                }
            }
            ci += 1;
        }
        None
    }

    /// Parses `impl …` starting at `ci` (the `impl` keyword); returns the
    /// code index just past the block.
    fn impl_block(&mut self, ci: usize, end: usize) -> usize {
        let Some(open) = self.find_punct(ci + 1, end, '{', ';') else {
            return ci + 1;
        };
        let Some(close) = matching(self.toks, self.code, open, '{', '}') else {
            return end;
        };
        // Header idents between `impl` and `{`: the self type is the path
        // head after `for` (trait impls) or the first path head (inherent).
        let mut after_for = false;
        let mut ty: Option<String> = None;
        let mut j = ci + 1;
        while j < open {
            let t = self.tok(j);
            if t.is_ident("for") {
                after_for = true;
                ty = None;
            } else if t.kind == TokenKind::Ident && ty.is_none() {
                // Skip generic parameter lists `<…>` — find_punct treats
                // them as depth, but here we walk token by token, so step
                // over an immediately following generic group instead.
                ty = Some(t.text.clone());
            } else if t.is_punct(':') && !after_for {
                // `impl<S: SummaryStore>` — the bound's idents must not
                // shadow the self type; reset only if we are still inside
                // the generic parameter list (ty was a generic param name).
            }
            j += 1;
        }
        // Resolve `impl<S> DeltaOverlay<S>`: the first ident is the generic
        // parameter, not the type. Re-derive: take the ident immediately
        // preceding the body brace's path position — i.e. the last path
        // head before `{`, after `for` when present.
        let ty = self.impl_self_type(ci + 1, open).or(ty);
        let assoc = self.assoc_bindings(open + 1, close);
        if let Some(ty) = ty {
            self.scan(open + 1, close, Some(&ty), &assoc);
        }
        close + 1
    }

    /// The self-type head of an impl header in `[from, open)`: the first
    /// path-head ident after `for` if present, else the first ident at
    /// angle-depth 0 (skipping the `impl<…>` generic parameter list).
    fn impl_self_type(&self, from: usize, open: usize) -> Option<String> {
        let mut depth = 0i32;
        let mut first: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut ci = from;
        while ci < open {
            let t = self.tok(ci);
            if t.kind == TokenKind::Punct {
                match t.text.chars().next().unwrap_or(' ') {
                    '<' => depth += 1,
                    '>' if !(ci > from && self.tok(ci - 1).is_punct('-')) => depth -= 1,
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident && depth == 0 {
                if t.text == "for" {
                    saw_for = true;
                } else if t.text == "where" {
                    break;
                } else if saw_for {
                    if after_for.is_none() {
                        after_for = Some(t.text.clone());
                    }
                } else if first.is_none() {
                    first = Some(t.text.clone());
                }
            }
            ci += 1;
        }
        after_for.or(first)
    }

    /// Collects `type Name = Head;` bindings at depth 0 of an impl body.
    fn assoc_bindings(&self, start: usize, end: usize) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        let mut depth = 0usize;
        let mut ci = start;
        while ci < end {
            let t = self.tok(ci);
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_ident("type") && ci + 2 < end {
                let name = self.tok(ci + 1);
                if name.kind == TokenKind::Ident && self.tok(ci + 2).is_punct('=') {
                    // Head of the bound type: first ident after `=`.
                    let mut j = ci + 3;
                    while j < end && !self.tok(j).is_punct(';') {
                        if self.tok(j).kind == TokenKind::Ident {
                            out.insert(name.text.clone(), self.tok(j).text.clone());
                            break;
                        }
                        j += 1;
                    }
                }
            }
            ci += 1;
        }
        out
    }

    /// Parses `trait Name { … }`, treating default methods as owned by the
    /// trait. Returns the code index just past the block.
    fn trait_block(&mut self, ci: usize, end: usize) -> usize {
        let name = match self.code.get(ci + 1) {
            Some(&j) if self.toks[j].kind == TokenKind::Ident => self.toks[j].text.clone(),
            _ => return ci + 1,
        };
        let Some(open) = self.find_punct(ci + 2, end, '{', ';') else {
            return ci + 1;
        };
        let Some(close) = matching(self.toks, self.code, open, '{', '}') else {
            return end;
        };
        self.scan(open + 1, close, Some(&name), &BTreeMap::new());
        close + 1
    }

    /// Parses `struct Name { fields }` field types; tuple/unit structs are
    /// recorded with no fields. Returns the index just past the item.
    fn struct_item(&mut self, ci: usize, end: usize) -> usize {
        let name = match self.code.get(ci + 1) {
            Some(&j) if self.toks[j].kind == TokenKind::Ident => self.toks[j].text.clone(),
            _ => return ci + 1,
        };
        let Some(open) = self.find_punct(ci + 2, end, '{', ';') else {
            // `struct Name;` or `struct Name(…);` — no named fields.
            self.structs.entry(name).or_default();
            return ci + 2;
        };
        let Some(close) = matching(self.toks, self.code, open, '{', '}') else {
            return end;
        };
        let mut fields = FieldTypes::new();
        // Fields are `vis? name : Type ,` at depth 0 of the body.
        let mut depth = 0i32;
        let mut j = open + 1;
        while j < close {
            let t = self.tok(j);
            if t.kind == TokenKind::Punct {
                match t.text.chars().next().unwrap_or(' ') {
                    '(' | '[' | '{' | '<' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    '>' if !self.tok(j - 1).is_punct('-') => depth -= 1,
                    _ => {}
                }
            }
            if depth == 0
                && t.kind == TokenKind::Ident
                && j + 1 < close
                && self.tok(j + 1).is_punct(':')
                && !self.tok(j + 1 + 1).is_punct(':')
                && (j == open + 1 || !self.tok(j - 1).is_punct(':'))
            {
                // Head type: first ident after the colon.
                let mut k = j + 2;
                while k < close {
                    let tk = self.tok(k);
                    if tk.kind == TokenKind::Ident
                        && !matches!(tk.text.as_str(), "mut" | "dyn" | "pub" | "crate")
                    {
                        fields.insert(t.text.clone(), tk.text.clone());
                        break;
                    }
                    if tk.is_punct(',') {
                        break;
                    }
                    k += 1;
                }
            }
            j += 1;
        }
        self.structs.insert(name, fields);
        close + 1
    }

    /// Parses one `fn` item starting at `ci` (the `fn` keyword). Returns
    /// the code index just past the item.
    fn fn_item(
        &mut self,
        ci: usize,
        end: usize,
        owner: Option<&str>,
        assoc: &BTreeMap<String, String>,
    ) -> usize {
        let name_tok = match self.code.get(ci + 1) {
            Some(&j) if self.toks[j].kind == TokenKind::Ident => &self.toks[j],
            _ => return ci + 1,
        };
        let name = name_tok.text.clone();
        let line = self.tok(ci).line;

        // Parameter list: the first `(` at angle-depth 0 after the name
        // (skipping a generic parameter list).
        let Some(paren_open) = self.find_punct(ci + 2, end, '(', '{') else {
            return ci + 1;
        };
        let Some(paren_close) = matching(self.toks, self.code, paren_open, '(', ')') else {
            return end;
        };
        let params = self.params(paren_open + 1, paren_close, owner, assoc);

        // Body: the first `{` at depth 0 after the params (skipping return
        // type and where clause), or `;` for bodyless trait methods.
        let (body, span_end) = match self.find_punct(paren_close + 1, end, '{', ';') {
            Some(open) => match matching(self.toks, self.code, open, '{', '}') {
                Some(close) => (Some((open, close)), close),
                None => (None, end.saturating_sub(1)),
            },
            None => {
                // Bodyless: span runs to the terminating `;`.
                let mut j = paren_close + 1;
                while j < end && !self.tok(j).is_punct(';') {
                    j += 1;
                }
                (None, j.min(end.saturating_sub(1)))
            }
        };

        let (contracts, unknown_contracts) = self.contracts_before(ci);
        self.fns.push(FnItem {
            name,
            owner: owner.map(str::to_string),
            line,
            span: (ci, span_end),
            body,
            contracts,
            unknown_contracts,
            params,
            assoc_types: assoc.clone(),
            in_test_region: self.mask.get(ci).copied().unwrap_or(false),
        });
        span_end + 1
    }

    /// Parses the parameter list in `(from, to)` into names and head types.
    fn params(
        &self,
        from: usize,
        to: usize,
        owner: Option<&str>,
        assoc: &BTreeMap<String, String>,
    ) -> Vec<Param> {
        // Split on top-level commas.
        let mut out = Vec::new();
        let mut depth = 0i32;
        let mut seg_start = from;
        let mut ci = from;
        while ci <= to {
            let at_end = ci == to;
            let is_sep = !at_end
                && self.tok(ci).kind == TokenKind::Punct
                && self.tok(ci).text == ","
                && depth == 0;
            if !at_end && !is_sep {
                let t = self.tok(ci);
                if t.kind == TokenKind::Punct {
                    match t.text.chars().next().unwrap_or(' ') {
                        '(' | '[' | '<' => depth += 1,
                        ')' | ']' => depth -= 1,
                        '>' if !(ci > from && self.tok(ci - 1).is_punct('-')) => depth -= 1,
                        _ => {}
                    }
                }
            }
            if is_sep || at_end {
                if seg_start < ci {
                    if let Some(p) = self.param(seg_start, ci, owner, assoc) {
                        out.push(p);
                    }
                }
                seg_start = ci + 1;
            }
            ci += 1;
        }
        out
    }

    /// One parameter segment `[from, to)`: `mut? name : Type` or a `self`
    /// receiver form.
    fn param(
        &self,
        from: usize,
        to: usize,
        owner: Option<&str>,
        assoc: &BTreeMap<String, String>,
    ) -> Option<Param> {
        // Binding name: first ident that is not `mut`, skipping `&`/lifetimes.
        let mut ci = from;
        let name = loop {
            if ci >= to {
                return None;
            }
            let t = self.tok(ci);
            if t.kind == TokenKind::Ident && t.text != "mut" {
                break t.text.clone();
            }
            ci += 1;
        };
        if name == "self" {
            return Some(Param {
                name,
                ty: owner.map(str::to_string),
            });
        }
        // Type: everything after the first `:` — resolve its head.
        let mut colon = ci + 1;
        while colon < to && !self.tok(colon).is_punct(':') {
            colon += 1;
        }
        if colon >= to {
            return None; // pattern params (`(a, b): (u8, u8)`) — skip
        }
        let ty = self.type_head(colon + 1, to, owner, assoc);
        Some(Param { name, ty })
    }

    /// Resolves the head type name of the type tokens in `[from, to)`.
    ///
    /// `&mut Self::Union` with a binding `Union ↦ NodeBitset` resolves to
    /// `NodeBitset`; `crate::par::Chunks` to `Chunks`; slices, tuples,
    /// `impl Trait`, `dyn Trait` and bare generics resolve to `None`.
    fn type_head(
        &self,
        from: usize,
        to: usize,
        owner: Option<&str>,
        assoc: &BTreeMap<String, String>,
    ) -> Option<String> {
        // Collect the leading path segments, skipping `&`, `mut`, lifetimes.
        let mut segs: Vec<String> = Vec::new();
        let mut ci = from;
        while ci < to {
            let t = self.tok(ci);
            match t.kind {
                TokenKind::Ident if t.text == "mut" || t.text == "dyn" => ci += 1,
                TokenKind::Ident if t.text == "impl" => return None,
                TokenKind::Ident => {
                    segs.push(t.text.clone());
                    // Continue only through `::`.
                    if ci + 2 < to
                        && self.tok(ci + 1).is_punct(':')
                        && self.tok(ci + 2).is_punct(':')
                    {
                        ci += 3;
                    } else {
                        break;
                    }
                }
                TokenKind::Punct if t.text == "&" => ci += 1,
                TokenKind::Lifetime => ci += 1,
                _ => return None, // slice `[`, tuple `(`, fn pointers, …
            }
        }
        let last = segs.last()?.clone();
        if segs.len() >= 2 && segs[segs.len() - 2] == "Self" {
            // `Self::Union` → the impl's associated-type binding.
            return assoc.get(&last).cloned();
        }
        if last == "Self" {
            return owner.map(str::to_string);
        }
        // Bare lowercase heads are generic params / primitives — still
        // useful (`u64` etc. resolve no methods), return as-is.
        Some(last)
    }

    /// Walks backward from the `fn` keyword at code index `ci` over
    /// qualifiers, attributes and comments, collecting `xtask-contract:`
    /// names from plain line comments.
    fn contracts_before(&self, ci: usize) -> (Vec<Contract>, Vec<(u32, String)>) {
        let mut contracts = Vec::new();
        let mut unknown = Vec::new();
        // Step back over qualifier tokens in the code view to find the
        // item's first code token.
        let mut c = ci;
        while c > 0 {
            let prev = self.tok(c - 1);
            let is_qual = (prev.kind == TokenKind::Ident
                && FN_QUALIFIERS.contains(&prev.text.as_str()))
                || prev.is_punct('(')
                || prev.is_punct(')')
                || prev.kind == TokenKind::Str; // `extern "C"`
            if is_qual {
                c -= 1;
            } else {
                break;
            }
        }
        // Now walk the *full* token stream backward from that code token,
        // over comments and attribute groups.
        let mut ti = self.code[c];
        while ti > 0 {
            ti -= 1;
            let t = &self.toks[ti];
            if t.is_comment() {
                if !t.is_doc_comment() {
                    if let Some(idx) = t.text.find("xtask-contract:") {
                        let rest = crate::rules::strip_justifications(
                            &t.text[idx + "xtask-contract:".len()..],
                        );
                        for item in rest.split(',') {
                            let name = item.split_whitespace().next().unwrap_or("");
                            if name.is_empty() {
                                continue;
                            }
                            match Contract::from_name(name) {
                                Some(contract) => contracts.push(contract),
                                None => unknown.push((t.line, name.to_string())),
                            }
                        }
                    }
                }
                continue;
            }
            if t.is_punct(']') {
                // Walk back over the attribute group.
                let mut depth = 1usize;
                while ti > 0 && depth > 0 {
                    ti -= 1;
                    if self.toks[ti].is_punct(']') {
                        depth += 1;
                    } else if self.toks[ti].is_punct('[') {
                        depth -= 1;
                    }
                }
                // Step over the introducing `#` (and inner-attribute `!`).
                while ti > 0 && (self.toks[ti - 1].is_punct('#') || self.toks[ti - 1].is_punct('!'))
                {
                    ti -= 1;
                }
                continue;
            }
            break;
        }
        contracts.sort();
        contracts.dedup();
        (contracts, unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(src)
    }

    #[test]
    fn free_fn_and_method_extraction() {
        let src = "fn free(a: u64) {}\n\
                   struct S { v: Vec<u8>, n: NodeId }\n\
                   impl S {\n    fn method(&self, x: &mut Other) -> u8 { 0 }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "free");
        assert_eq!(p.fns[0].owner, None);
        assert_eq!(p.fns[1].name, "method");
        assert_eq!(p.fns[1].owner.as_deref(), Some("S"));
        assert_eq!(p.fns[1].params[0].name, "self");
        assert_eq!(p.fns[1].params[0].ty.as_deref(), Some("S"));
        assert_eq!(p.fns[1].params[1].ty.as_deref(), Some("Other"));
        let fields = &p.structs["S"];
        assert_eq!(fields["v"], "Vec");
        assert_eq!(fields["n"], "NodeId");
    }

    #[test]
    fn trait_impl_self_type_and_assoc_binding() {
        let src = "impl InfluenceOracle for Frozen {\n\
                       type Union = NodeBitset;\n\
                       fn absorb(&self, union: &mut Self::Union) {}\n\
                   }\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.owner.as_deref(), Some("Frozen"));
        assert_eq!(f.params[1].ty.as_deref(), Some("NodeBitset"));
        assert_eq!(f.assoc_types["Union"], "NodeBitset");
    }

    #[test]
    fn generic_impl_resolves_self_type_not_parameter() {
        let src = "impl<S: Store> Overlay<S> {\n    fn go(&self) {}\n}\n";
        let p = parse(src);
        // The generic parameter list is skipped; `Overlay` is the type.
        assert_eq!(p.fns[0].owner.as_deref(), Some("Overlay"));
    }

    #[test]
    fn contracts_parsed_with_unknown_names() {
        let src = "/// Docs.\n\
                   // xtask-contract: alloc-free, kernel\n\
                   #[inline]\n\
                   pub fn hot(&self) {}\n\
                   // xtask-contract: not-a-contract\n\
                   fn other() {}\n";
        let p = parse(src);
        assert_eq!(
            p.fns[0].contracts,
            vec![Contract::AllocFree, Contract::Kernel]
        );
        assert!(p.fns[0].unknown_contracts.is_empty());
        assert!(p.fns[1].contracts.is_empty());
        assert_eq!(
            p.fns[1].unknown_contracts,
            vec![(5, "not-a-contract".into())]
        );
    }

    #[test]
    fn doc_comment_contract_mention_is_prose() {
        let src = "/// Use `// xtask-contract: alloc-free` to annotate.\nfn f() {}\n";
        let p = parse(src);
        assert!(p.fns[0].contracts.is_empty());
        assert!(p.fns[0].unknown_contracts.is_empty());
    }

    #[test]
    fn impl_trait_in_signature_is_not_an_impl_block() {
        let src = "fn each(base: &[u8], mut f: impl FnMut(u8)) { }\nfn after() {}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].params.len(), 2);
        assert_eq!(p.fns[0].params[1].ty, None);
        assert_eq!(p.fns[1].name, "after");
    }

    #[test]
    fn generics_and_where_clauses_skipped() {
        let src = "fn g<T: Into<u64>>(slots: &mut [T], u: usize) -> (u64, u64)\nwhere T: Copy {\n    (0, 0)\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "g");
        assert_eq!(p.fns[0].params[0].name, "slots");
        assert_eq!(p.fns[0].params[0].ty, None);
        assert_eq!(p.fns[0].params[1].ty.as_deref(), Some("usize"));
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert!(!p.fns[0].in_test_region);
        assert!(p.fns[1].in_test_region);
    }

    #[test]
    fn trait_default_methods_owned_by_trait() {
        let src = "trait Oracle {\n    fn influence(&self) -> f64;\n    fn many(&self) -> f64 { self.influence() }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Oracle"));
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }
}
