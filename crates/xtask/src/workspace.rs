//! Workspace discovery and the per-crate lint scoping policy.
//!
//! The walker finds every Rust source file that counts as *library code*:
//! the `src/` trees of each workspace member plus the facade crate at the
//! repository root. Integration tests, benches and examples (`tests/`,
//! `benches/`, `examples/` directories) are skipped wholesale — the lint
//! contract covers shipped library code, not test scaffolding.

use crate::rules::{lint_file, FileContext, Rule, Violation};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which rules apply to a crate, keyed by its directory name under
/// `crates/` (the facade package at the workspace root is `"infprop"`).
///
/// * `xtask` and `bench` are tooling: only the `forbid-unsafe` floor (bench
///   code times things with `Instant` by design, so no `no-raw-timing`).
/// * `cli` is a consumer binary: panics are still banned (it must render
///   `GraphError` nicely), but it prints by design and binary crates have no
///   public API surface to document.
/// * `core` and `hll` are the hot paths: everything, including the
///   default-hasher ban.
/// * `temporal-graph` carries the `Timestamp`/`NodeId` arithmetic, so the
///   lossy-cast rule applies there too.
/// * Remaining library crates (`datasets`, `diffusion`, `baselines`, the
///   facade) get the portable rules.
///
/// All non-tooling crates get `no-raw-timing`: clocks live behind the
/// `infprop_core::obs` recorder and the `infprop_core::trace` ring tracer,
/// whose implementation files (`obs.rs`, `trace.rs`) are the sanctioned
/// call sites (see [`collect_crate`]).
pub fn rules_for_crate(crate_dir: &str) -> Vec<Rule> {
    match crate_dir {
        "xtask" | "bench" => vec![Rule::ForbidUnsafe],
        "cli" => vec![Rule::NoPanic, Rule::ForbidUnsafe, Rule::NoRawTiming],
        "core" | "hll" => vec![
            Rule::NoPanic,
            Rule::NoLossyCast,
            Rule::NoDefaultHashmap,
            Rule::PubDocs,
            Rule::ForbidUnsafe,
            Rule::NoPrint,
            Rule::NoRawTiming,
        ],
        "temporal-graph" => vec![
            Rule::NoPanic,
            Rule::NoLossyCast,
            Rule::PubDocs,
            Rule::ForbidUnsafe,
            Rule::NoPrint,
            Rule::NoRawTiming,
        ],
        _ => vec![
            Rule::NoPanic,
            Rule::PubDocs,
            Rule::ForbidUnsafe,
            Rule::NoPrint,
            Rule::NoRawTiming,
        ],
    }
}

/// A source file scheduled for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Lint context (carries the workspace-relative path for diagnostics).
    pub ctx: FileContext,
}

/// Walks the workspace rooted at `root` and returns every library source
/// file with its lint context.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();

    // Facade crate: `src/` at the workspace root.
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_crate(root, &facade_src, "infprop", &mut files)?;
    }

    // Workspace members under `crates/`.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let src = dir.join("src");
            if src.is_dir() {
                collect_crate(root, &src, &name, &mut files)?;
            }
        }
    }

    Ok(files)
}

/// Recursively collects `.rs` files under one crate's `src/` tree.
fn collect_crate(
    root: &Path,
    src: &Path,
    crate_dir: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let rules = rules_for_crate(crate_dir);
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                // `src/` subtrees named like test scaffolding are still
                // modules; only top-level tests/benches/examples dirs sit
                // outside `src/`, so no filtering is needed here.
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let is_crate_root = path
                    .file_name()
                    .is_some_and(|n| n == "lib.rs" || n == "main.rs")
                    && path.parent() == Some(src);
                // The observability and tracing modules are where clocks
                // are implemented; they are the only library files allowed
                // raw `Instant` (everything else reads time through the
                // recorder or a tracer).
                let is_clock_impl = crate_dir == "core"
                    && path
                        .file_name()
                        .is_some_and(|n| n == "obs.rs" || n == "trace.rs");
                let mut rules = rules.clone();
                if is_clock_impl {
                    rules.retain(|r| *r != Rule::NoRawTiming);
                }
                // The layered-oracle delta path promises clock-free appends
                // and compactions; there `no-raw-timing` cannot be waived
                // even with an `xtask-allow` comment.
                let mut unwaivable = Vec::new();
                if crate_dir == "core" && path.file_name().is_some_and(|n| n == "delta.rs") {
                    unwaivable.push(Rule::NoRawTiming);
                }
                // `#![forbid(unsafe_code)]` is non-negotiable in every
                // crate root except core's, which hosts the two cfg-gated
                // unsafe modules (the AVX2 kernel behind `simd-avx2`, the
                // mmap arena behind `mmap`) and downgrades to a reviewed
                // conditional forbid + waiver there. No other crate can
                // waive its way out of the forbid with a comment.
                if crate_dir != "core" {
                    unwaivable.push(Rule::ForbidUnsafe);
                }
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                out.push(SourceFile {
                    abs_path: path.clone(),
                    ctx: FileContext {
                        path: rel,
                        rules,
                        unwaivable,
                        is_crate_root,
                    },
                });
            }
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`. Returns all violations,
/// sorted by file then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for file in discover(root)? {
        let source = fs::read_to_string(&file.abs_path)?;
        violations.extend(lint_file(&file.ctx, &source));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(violations)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
