//! A minimal token-level scanner for Rust source.
//!
//! The lint rules in [`crate::rules`] need just enough lexical structure to
//! be sound: comments (doc vs. plain) must be separated from code so that a
//! `panic!` mentioned in prose is not a violation, string/char literals must
//! be opaque, and identifiers/punctuation must come out as discrete tokens
//! so rules can match sequences like `.` `unwrap` `(` or `as` `usize`.
//!
//! This is *not* a full Rust lexer — multi-character operators arrive as
//! runs of single [`TokenKind::Punct`] tokens and no keyword table exists —
//! but it handles every construct that would otherwise cause a false match:
//! nested block comments, raw strings with `#` fences, byte/raw-byte/C
//! strings, raw identifiers (`r#type`), lifetimes vs. char literals, and
//! float literals vs. range expressions (`0..10`).

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` (including the leading quote).
    Lifetime,
    /// Numeric literal, including suffixes (`1_000u64`, `0x1f`, `2.5e-3`).
    Number,
    /// String-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A single punctuation character (`.`, `:`, `!`, `<`, …).
    Punct,
    /// `// …` comment; `doc` is true for `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` outer or `//!` inner).
        doc: bool,
    },
    /// `/* … */` comment; `doc` is true for `/** … */` and `/*! … */` forms.
    BlockComment {
        /// Whether this is a doc comment (`/**` outer or `/*!` inner).
        doc: bool,
    },
}

/// One lexed token with its source text and 1-based start line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// True if the token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// True if the token is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }

    /// True if the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if the token is a punctuation character with exactly this text.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.chars().eq(std::iter::once(ch))
    }
}

/// Lexes `src` into a token stream, comments included.
///
/// The scanner never fails: malformed input (unterminated strings, stray
/// bytes) degrades into best-effort tokens, which is the right trade-off for
/// a linter that must not crash on code rustc itself will reject.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start, line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start, line),
                b'"' => self.string(start, line),
                b'\'' => self.lifetime_or_char(start, line),
                b'0'..=b'9' => self.number(start, line),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(start, line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            text: self.src[start..self.pos].to_string(),
            line,
        });
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        // `///` is an outer doc comment unless it is a `////…` ruler line;
        // `//!` is an inner doc comment.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.push(TokenKind::LineComment { doc }, start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let text = &self.src[start..self.pos];
        // `/**/` is empty, not doc; `/***…` is a ruler, not doc.
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
            || text.starts_with("/*!");
        self.push(TokenKind::BlockComment { doc }, start, line);
    }

    /// Plain `"…"` string with backslash escapes.
    fn string(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Str, start, line);
    }

    /// Raw string body: caller has consumed the prefix up to (not including)
    /// the `#…#"` fence. Consumes `#`* `"` … `"` `#`*.
    fn raw_string_body(&mut self, start: usize, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) == Some(b'"') {
            self.bump();
        }
        'scan: while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                // Check for `"` followed by `hashes` many `#`.
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump(); // closing quote
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break 'scan;
                }
            }
            self.bump();
        }
        self.push(TokenKind::Str, start, line);
    }

    fn lifetime_or_char(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: '\n', '\u{1F600}', …
                self.bump();
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.bump();
                }
                if self.pos < self.bytes.len() {
                    self.bump();
                }
                self.push(TokenKind::Char, start, line);
            }
            Some(b) if is_ident_start(b) && self.peek(1) != Some(b'\'') => {
                // Lifetime: 'a, 'static, '_.
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, start, line);
            }
            Some(_) => {
                // Char literal: 'x', '(' — single char then closing quote.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, start, line);
            }
            None => self.push(TokenKind::Char, start, line),
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut seen_dot = false;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && !seen_dot && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // Float like `2.5` — but leave `0..10` as Number Punct Punct
                // Number, since `.` there is followed by `.`, not a digit.
                seen_dot = true;
                self.bump();
            } else if (b == b'+' || b == b'-')
                && self.pos > start
                && matches!(self.bytes[self.pos - 1], b'e' | b'E')
                && !self.src[start..self.pos].starts_with("0x")
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
            {
                // Signed exponent: 2.5e-3.
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, line);
    }

    fn ident_or_prefixed_literal(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.bump();
        }
        let ident = &self.src[start..self.pos];
        match (ident, self.peek(0)) {
            // Raw strings: r"…", r#"…"#, br#"…"#, cr#"…"#. A `#` after `r`
            // can also start a raw identifier (r#type); those continue with
            // an identifier character instead of more `#`s or a quote.
            ("r" | "br" | "cr", Some(b'"')) => self.raw_string_body(start, line),
            ("r" | "br" | "cr", Some(b'#')) if self.raw_fence_ahead() => {
                self.raw_string_body(start, line)
            }
            ("r", Some(b'#')) => {
                // Raw identifier: consume `#` and the identifier body.
                self.bump();
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.bump();
                }
                self.push(TokenKind::Ident, start, line);
            }
            // Byte / C strings and byte chars: b"…", c"…", b'\n'.
            ("b" | "c", Some(b'"')) => self.string_with_prefix(start, line),
            ("b", Some(b'\'')) => {
                self.bump(); // opening quote
                             // Reuse the char path: treat rest as a char literal body.
                match self.peek(0) {
                    Some(b'\\') => {
                        self.bump();
                        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                            self.bump();
                        }
                        if self.pos < self.bytes.len() {
                            self.bump();
                        }
                    }
                    Some(_) => {
                        self.bump();
                        if self.peek(0) == Some(b'\'') {
                            self.bump();
                        }
                    }
                    None => {}
                }
                self.push(TokenKind::Char, start, line);
            }
            _ => self.push(TokenKind::Ident, start, line),
        }
    }

    /// After an `r`/`br`/`cr` prefix sitting at a `#`, is this a raw-string
    /// fence (`#`* `"`), as opposed to a raw identifier (`#ident`)?
    fn raw_fence_ahead(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    /// `b"…"` / `c"…"` after the prefix identifier has been consumed.
    fn string_with_prefix(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Str, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("foo.unwrap()");
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[1].1, ".");
        assert_eq!(toks[2].1, "unwrap");
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = kinds("0..10");
        let texts: Vec<_> = toks.iter().map(|t| t.1.as_str()).collect();
        assert_eq!(texts, ["0", ".", ".", "10"]);
    }

    #[test]
    fn float_with_exponent() {
        let toks = kinds("2.5e-3 + 1");
        assert_eq!(toks[0].1, "2.5e-3");
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "panic!(); .unwrap()";"#);
        assert!(toks.iter().all(|t| t.1 != "panic" && t.1 != "unwrap"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Str));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r####"let s = r#"quote " inside"#; x"####);
        assert!(toks.iter().any(|t| t.0 == TokenKind::Str));
        assert_eq!(toks.last().map(|t| t.1.as_str()), Some("x"));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "r#type"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 2);
    }

    #[test]
    fn comments_doc_flags() {
        let toks = lex("/// doc\n// plain\n//! inner\n//// ruler\n/* blk */\n/** docblk */");
        let docs: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_comment())
            .map(Token::is_doc_comment)
            .collect();
        assert_eq!(docs, [true, false, true, false, false, true]);
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* outer /* inner */ still */ after");
        assert_eq!(toks.last().map(|t| t.1.as_str()), Some("after"));
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn byte_char_literal() {
        let toks = kinds("let b = b'\\n'; let s = b\"bytes\";");
        assert!(toks.iter().any(|t| t.0 == TokenKind::Char));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Str));
    }
}
