//! Name-resolved intra-workspace call graph over [`crate::items`].
//!
//! For each parsed function body this module extracts every call site —
//! method calls, qualified-path calls, bare calls, and macro invocations —
//! and resolves callees to workspace functions where the token stream gives
//! enough evidence:
//!
//! * `self.method()` → methods of the enclosing impl's self type,
//! * `self.field.method()` → via the owner struct's field-type map,
//! * `local.method()` → via `let local: Type` / `let local = Type::new(…)`
//!   hints and typed parameters (including `&mut Self::Union` through the
//!   impl's associated-type bindings),
//! * `Type::func(…)` / `module::func(…)` / bare `func(…)` by path head.
//!
//! Resolution is deliberately conservative and its limits are explicit in
//! the [`Resolution`] variants: a receiver whose type cannot be recovered
//! resolves through a unique-name fallback ([`Resolution::Fallback`]) only
//! when exactly one workspace function bears the name; multiple candidates
//! yield [`Resolution::Ambiguous`] (skipped by traversal — a documented
//! soundness limit); everything else is [`Resolution::External`]. The
//! semantic passes in [`crate::analyze`] treat *banned* names (`push`,
//! `collect`, `unwrap`, …) as violations unless they resolve through a
//! *typed* lookup, so the fallback can never bless an allocation.

use crate::items::{FnItem, ParsedFile};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// How a call site's callee was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Resolved to a workspace function through receiver/path *type*
    /// evidence (global fn id).
    Resolved(usize),
    /// Resolved through the unique-name fallback: the receiver's type is
    /// unknown but exactly one workspace function bears the name.
    Fallback(usize),
    /// Not a workspace function (std / external crate / unknown method of a
    /// non-workspace type).
    External,
    /// Several workspace candidates and no type evidence — traversal skips
    /// the edge (soundness limit, see DESIGN.md §12).
    Ambiguous,
    /// A macro invocation `name!(…)`.
    Macro,
    /// A call of a local binding or parameter (closure call) — no edge.
    Local,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line of the callee name token.
    pub line: u32,
    /// The callee name as written (`push`, `format`, `map_indexed_with`).
    pub name: String,
    /// The path head or recovered receiver type (`Vec` in `Vec::new(…)`,
    /// `NodeBitset` for `union.insert(…)` with a typed receiver), when
    /// known. Lets the passes recognize `Vec::new`-style constructions.
    pub qualifier: Option<String>,
    /// Resolution outcome.
    pub resolution: Resolution,
}

/// Per-function facts the passes consume.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
    /// Lines with an indexing/slicing expression (`expr[…]`).
    pub index_sites: Vec<u32>,
}

/// The workspace call graph: one node per parsed function.
#[derive(Debug)]
pub struct CallGraph {
    /// Global fn id → (file index, fn index within that file).
    pub fns: Vec<(usize, usize)>,
    /// Global fn id → extracted facts.
    pub facts: Vec<FnFacts>,
    /// `(file index, fn index)` → global fn id (dense prefix offsets).
    base: Vec<usize>,
}

impl CallGraph {
    /// The global id of file `fi`'s `k`-th function.
    pub fn id(&self, fi: usize, k: usize) -> usize {
        self.base[fi] + k
    }

    /// The `(file index, fn index)` behind a global id.
    pub fn locate(&self, id: usize) -> (usize, usize) {
        self.fns[id]
    }
}

/// Keywords that look like bare calls (`if (…)`, `match (…)`) or must not
/// be treated as receivers.
const CALL_KEYWORDS: [&str; 16] = [
    "if", "else", "match", "while", "for", "in", "loop", "return", "break", "continue", "move",
    "ref", "mut", "as", "await", "unsafe",
];

/// Builds the call graph over all parsed files.
pub fn build(files: &[ParsedFile]) -> CallGraph {
    // Global function table and name indexes.
    let mut fns: Vec<(usize, usize)> = Vec::new();
    let mut base = Vec::with_capacity(files.len());
    for (fi, file) in files.iter().enumerate() {
        base.push(fns.len());
        for k in 0..file.fns.len() {
            fns.push((fi, k));
        }
    }
    // (owner type, method name) → ids; free name → ids; any name → ids.
    let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut any: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, &(fi, k)) in fns.iter().enumerate() {
        let f = &files[fi].fns[k];
        if f.in_test_region {
            continue; // test helpers must not capture workspace names
        }
        any.entry(&f.name).or_default().push(id);
        match &f.owner {
            Some(owner) => typed.entry((owner, &f.name)).or_default().push(id),
            None => free.entry(&f.name).or_default().push(id),
        }
    }

    let mut facts = vec![FnFacts::default(); fns.len()];
    for (id, &(fi, k)) in fns.iter().enumerate() {
        let file = &files[fi];
        let f = &file.fns[k];
        if let Some((body_open, body_close)) = f.body {
            facts[id] = extract(
                file,
                f,
                fi,
                body_open,
                body_close,
                &Indexes {
                    typed: &typed,
                    free: &free,
                    any: &any,
                    fns: &fns,
                },
            );
        }
    }

    CallGraph { fns, facts, base }
}

struct Indexes<'a> {
    typed: &'a BTreeMap<(&'a str, &'a str), Vec<usize>>,
    free: &'a BTreeMap<&'a str, Vec<usize>>,
    any: &'a BTreeMap<&'a str, Vec<usize>>,
    fns: &'a [(usize, usize)],
}

impl Indexes<'_> {
    /// Typed lookup: one candidate resolves, several are ambiguous.
    fn lookup_typed(&self, owner: &str, name: &str) -> Resolution {
        match self.typed.get(&(owner, name)).map(Vec::as_slice) {
            Some([id]) => Resolution::Resolved(*id),
            Some(_) => Resolution::Ambiguous,
            None => Resolution::External,
        }
    }

    /// Free-function lookup with same-file preference.
    fn lookup_free(&self, name: &str, file: usize) -> Resolution {
        match self.free.get(name).map(Vec::as_slice) {
            Some([id]) => Resolution::Resolved(*id),
            Some(ids) => {
                let here: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].0 == file)
                    .collect();
                match here.as_slice() {
                    [id] => Resolution::Resolved(*id),
                    _ => Resolution::Ambiguous,
                }
            }
            None => Resolution::External,
        }
    }

    /// Unknown-receiver fallback over every workspace fn name.
    fn lookup_any(&self, name: &str) -> Resolution {
        match self.any.get(name).map(Vec::as_slice) {
            Some([id]) => Resolution::Fallback(*id),
            Some(_) => Resolution::Ambiguous,
            None => Resolution::External,
        }
    }
}

/// Extracts call sites and indexing sites from one function body.
fn extract(
    file: &ParsedFile,
    f: &FnItem,
    fi: usize,
    body_open: usize,
    body_close: usize,
    ix: &Indexes<'_>,
) -> FnFacts {
    let toks = &file.toks;
    let code = &file.code;
    let tok = |ci: usize| -> &Token { &toks[code[ci]] };

    // Local type hints: parameters first, then `let` bindings.
    let mut locals: BTreeMap<String, Option<String>> = BTreeMap::new();
    for p in &f.params {
        locals.insert(p.name.clone(), p.ty.clone());
    }
    let mut ci = body_open + 1;
    while ci < body_close {
        if tok(ci).is_ident("let") {
            let mut j = ci + 1;
            if j < body_close && tok(j).is_ident("mut") {
                j += 1;
            }
            if j < body_close && tok(j).kind == TokenKind::Ident {
                let name = tok(j).text.clone();
                let ty = if tok(j + 1).is_punct(':') && !tok(j + 2).is_punct(':') {
                    // `let x: Type` — head ident of the ascription.
                    head_type_after(file, j + 2, body_close, f)
                } else if tok(j + 1).is_punct('=')
                    && tok(j + 2).kind == TokenKind::Ident
                    && starts_upper(&tok(j + 2).text)
                    && tok(j + 3).is_punct(':')
                    && tok(j + 4).is_punct(':')
                {
                    // `let x = Type::ctor(…)` — the constructor's type.
                    resolve_type_name(&tok(j + 2).text, f)
                } else {
                    None
                };
                locals.insert(name, ty);
            }
        }
        ci += 1;
    }

    let mut facts = FnFacts::default();
    let mut ci = body_open + 1;
    while ci < body_close {
        let t = tok(ci);
        // Skip attribute groups: `#[derive(…)]` contents mimic calls.
        if t.is_punct('#') && ci + 1 < body_close && tok(ci + 1).is_punct('[') {
            if let Some(close) = crate::rules::matching(toks, code, ci + 1, '[', ']') {
                ci = close + 1;
                continue;
            }
        }
        // Indexing: `expr[…]` — `[` whose previous code token closes an
        // expression (identifier, `)`, `]`, or a literal).
        if t.is_punct('[') {
            let prev = tok(ci - 1);
            let is_index = match prev.kind {
                TokenKind::Ident => !CALL_KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                TokenKind::Number | TokenKind::Str => true,
                _ => false,
            };
            if is_index {
                facts.index_sites.push(t.line);
            }
            ci += 1;
            continue;
        }
        if t.kind != TokenKind::Ident || CALL_KEYWORDS.contains(&t.text.as_str()) {
            ci += 1;
            continue;
        }
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if ci + 2 < body_close
            && tok(ci + 1).is_punct('!')
            && (tok(ci + 2).is_punct('(') || tok(ci + 2).is_punct('[') || tok(ci + 2).is_punct('{'))
        {
            facts.calls.push(CallSite {
                line: t.line,
                name: t.text.clone(),
                qualifier: None,
                resolution: Resolution::Macro,
            });
            ci += 2;
            continue;
        }
        // Call head: `name(` directly, or `name::<…>(` with a turbofish.
        let after = call_paren_after(file, ci, body_close);
        let Some(_paren) = after else {
            ci += 1;
            continue;
        };
        let name = t.text.clone();
        let (resolution, qualifier) = resolve_call(file, f, fi, ci, &name, &locals, ix);
        facts.calls.push(CallSite {
            line: t.line,
            name,
            qualifier,
            resolution,
        });
        ci += 1;
    }
    facts
}

/// If the ident at `ci` heads a call, the code index of its `(`:
/// either directly adjacent or after a `::<…>` turbofish.
fn call_paren_after(file: &ParsedFile, ci: usize, end: usize) -> Option<usize> {
    let tok = |i: usize| -> &Token { &file.toks[file.code[i]] };
    if ci + 1 < end && tok(ci + 1).is_punct('(') {
        return Some(ci + 1);
    }
    if ci + 3 < end
        && tok(ci + 1).is_punct(':')
        && tok(ci + 2).is_punct(':')
        && tok(ci + 3).is_punct('<')
    {
        // Balance the turbofish generics.
        let mut depth = 0i32;
        let mut j = ci + 3;
        while j < end {
            let t = tok(j);
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !tok(j - 1).is_punct('-') {
                depth -= 1;
                if depth == 0 {
                    return (j + 1 < end && tok(j + 1).is_punct('(')).then_some(j + 1);
                }
            }
            j += 1;
        }
    }
    None
}

/// True if the name starts with an uppercase letter (type-like path head).
fn starts_upper(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Resolves `Self`/associated-type names against the enclosing fn's impl.
fn resolve_type_name(name: &str, f: &FnItem) -> Option<String> {
    if name == "Self" {
        return f.owner.clone();
    }
    Some(name.to_string())
}

/// Head type of a type ascription starting at code index `from`.
fn head_type_after(file: &ParsedFile, from: usize, end: usize, f: &FnItem) -> Option<String> {
    let tok = |i: usize| -> &Token { &file.toks[file.code[i]] };
    let mut segs: Vec<String> = Vec::new();
    let mut ci = from;
    while ci < end {
        let t = tok(ci);
        match t.kind {
            TokenKind::Ident if t.text == "mut" || t.text == "dyn" => ci += 1,
            TokenKind::Ident if t.text == "impl" => return None,
            TokenKind::Ident => {
                segs.push(t.text.clone());
                if ci + 2 < end && tok(ci + 1).is_punct(':') && tok(ci + 2).is_punct(':') {
                    ci += 3;
                } else {
                    break;
                }
            }
            TokenKind::Punct if t.text == "&" => ci += 1,
            TokenKind::Lifetime => ci += 1,
            _ => return None,
        }
    }
    let last = segs.last()?.clone();
    if segs.len() >= 2 && segs[segs.len() - 2] == "Self" {
        return f.assoc_types.get(&last).cloned();
    }
    if last == "Self" {
        return f.owner.clone();
    }
    Some(last)
}

/// Resolves the call whose name ident sits at code index `ci`. Returns the
/// resolution plus the path head / receiver type when one was recovered.
#[allow(clippy::too_many_arguments)]
fn resolve_call(
    file: &ParsedFile,
    f: &FnItem,
    fi: usize,
    ci: usize,
    name: &str,
    locals: &BTreeMap<String, Option<String>>,
    ix: &Indexes<'_>,
) -> (Resolution, Option<String>) {
    let tok = |i: usize| -> &Token { &file.toks[file.code[i]] };
    let prev = |i: usize| (i > 0).then(|| tok(i - 1));

    // Method call: `.name(`.
    if prev(ci).is_some_and(|p| p.is_punct('.')) {
        let recv_ty = receiver_type(file, f, ci - 1, locals);
        return match recv_ty {
            ReceiverType::Known(ty) => {
                let r = ix.lookup_typed(&ty, name);
                (r, Some(ty))
            }
            ReceiverType::Unknown => (ix.lookup_any(name), None),
        };
    }

    // Qualified path: `…::name(`.
    if ci >= 2 && tok(ci - 1).is_punct(':') && tok(ci - 2).is_punct(':') {
        // Collect path segments backward (stopping at a turbofish `>`),
        // e.g. `crate :: par :: map_indexed_with`.
        let mut segs: Vec<String> = Vec::new();
        let mut j = ci - 2;
        loop {
            if j == 0 || tok(j - 1).kind != TokenKind::Ident {
                break;
            }
            segs.push(tok(j - 1).text.clone());
            if j >= 3 && tok(j - 2).is_punct(':') && tok(j - 3).is_punct(':') {
                j -= 3;
            } else {
                break;
            }
        }
        let Some(owner) = segs.first() else {
            // `<T as Trait>::name(…)` and similar — no usable head.
            return (ix.lookup_any(name), None);
        };
        if owner == "Self" {
            return match &f.owner {
                Some(ty) => (ix.lookup_typed(ty, name), Some(ty.clone())),
                None => (Resolution::External, None),
            };
        }
        if starts_upper(owner) {
            return (ix.lookup_typed(owner, name), Some(owner.clone()));
        }
        // Module path (`par::f`, `crate::par::f`): a free-function lookup.
        (ix.lookup_free(name, fi), Some(owner.clone()))
    } else {
        // Bare call: `name(…)`.
        if locals.contains_key(name) {
            return (Resolution::Local, None); // closure/param call
        }
        if starts_upper(name) {
            return (Resolution::External, None); // tuple-struct / enum ctor
        }
        (ix.lookup_free(name, fi), None)
    }
}

enum ReceiverType {
    Known(String),
    Unknown,
}

/// The receiver type of a method call whose `.` sits at code index `dot`.
fn receiver_type(
    file: &ParsedFile,
    f: &FnItem,
    dot: usize,
    locals: &BTreeMap<String, Option<String>>,
) -> ReceiverType {
    let tok = |i: usize| -> &Token { &file.toks[file.code[i]] };
    if dot == 0 {
        return ReceiverType::Unknown;
    }
    let r = tok(dot - 1);
    if r.kind != TokenKind::Ident {
        return ReceiverType::Unknown; // chained call `…).f()`, index `…].f()`
    }
    let is_self_recv = r.text == "self" && !(dot >= 2 && tok(dot - 2).is_punct('.'));
    if is_self_recv {
        return match &f.owner {
            Some(ty) => ReceiverType::Known(ty.clone()),
            None => ReceiverType::Unknown,
        };
    }
    // `self.field.method()` — field type via the owner struct.
    if dot >= 3 && tok(dot - 2).is_punct('.') && tok(dot - 3).is_ident("self") {
        if let Some(owner) = &f.owner {
            if let Some(fields) = file.structs.get(owner) {
                if let Some(ty) = fields.get(&r.text) {
                    return ReceiverType::Known(ty.clone());
                }
            }
        }
        return ReceiverType::Unknown;
    }
    if dot >= 2 && tok(dot - 2).is_punct('.') {
        return ReceiverType::Unknown; // deeper chains: `a.b.c.method()`
    }
    match locals.get(&r.text) {
        Some(Some(ty)) => ReceiverType::Known(ty.clone()),
        _ => ReceiverType::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn graph_of(src: &str) -> (Vec<ParsedFile>, CallGraph) {
        let files = vec![parse_file(src)];
        let g = build(&files);
        (files, g)
    }

    fn calls_of<'g>(g: &'g CallGraph, files: &[ParsedFile], name: &str) -> &'g FnFacts {
        let id = (0..g.fns.len())
            .find(|&id| {
                let (fi, k) = g.locate(id);
                files[fi].fns[k].name == name
            })
            .unwrap();
        &g.facts[id]
    }

    #[test]
    fn self_method_resolves_to_impl() {
        let src = "struct S;\nimpl S {\n    fn a(&self) { self.b(); }\n    fn b(&self) {}\n}\n";
        let (files, g) = graph_of(src);
        let facts = calls_of(&g, &files, "a");
        assert_eq!(facts.calls.len(), 1);
        match facts.calls[0].resolution {
            Resolution::Resolved(id) => {
                let (fi, k) = g.locate(id);
                assert_eq!(files[fi].fns[k].name, "b");
            }
            ref other => panic!("expected Resolved, got {other:?}"),
        }
    }

    #[test]
    fn assoc_type_param_resolves_method() {
        let src = "struct Bits;\nimpl Bits {\n    fn insert(&mut self, v: usize) {}\n}\n\
                   struct F;\nimpl Oracle for F {\n    type Union = Bits;\n\
                   fn absorb(&self, union: &mut Self::Union) { union.insert(1); }\n}\n";
        let (files, g) = graph_of(src);
        let facts = calls_of(&g, &files, "absorb");
        let ins = facts.calls.iter().find(|c| c.name == "insert").unwrap();
        assert!(matches!(ins.resolution, Resolution::Resolved(_)), "{ins:?}");
    }

    #[test]
    fn field_and_let_hints_resolve() {
        let src = "struct Inner;\nimpl Inner {\n    fn go(&self) {}\n}\n\
                   struct Outer { inner: Inner }\nimpl Outer {\n\
                   fn a(&self) { self.inner.go(); }\n\
                   fn b(&self) { let x = Inner::make(); x.go(); let y: Inner = z; y.go(); }\n}\n";
        let (files, g) = graph_of(src);
        for fun in ["a", "b"] {
            let facts = calls_of(&g, &files, fun);
            for c in facts.calls.iter().filter(|c| c.name == "go") {
                assert!(
                    matches!(c.resolution, Resolution::Resolved(_)),
                    "{fun}: {c:?}"
                );
            }
        }
    }

    #[test]
    fn unknown_receiver_banned_name_stays_external() {
        let src = "fn f(v: &mut Vec<u8>) { v.push(1); }\n";
        let (files, g) = graph_of(src);
        let facts = calls_of(&g, &files, "f");
        // `Vec` is not a workspace type: push is External, never Fallback.
        assert!(matches!(facts.calls[0].resolution, Resolution::External));
    }

    #[test]
    fn macros_locals_and_indexing_detected() {
        let src = "fn f(cb: impl Fn(u8), xs: &[u8]) -> u8 {\n    cb(1);\n    vec![0u8; 4];\n    xs[0]\n}\n";
        let (files, g) = graph_of(src);
        let facts = calls_of(&g, &files, "f");
        let cb = facts.calls.iter().find(|c| c.name == "cb").unwrap();
        assert!(matches!(cb.resolution, Resolution::Local));
        let v = facts.calls.iter().find(|c| c.name == "vec").unwrap();
        assert!(matches!(v.resolution, Resolution::Macro));
        assert_eq!(facts.index_sites, vec![4]);
    }

    #[test]
    fn module_path_and_bare_calls_resolve_free_fns() {
        let src = "fn helper() {}\nfn f() { helper(); crate::inner::helper(); }\n";
        let (files, g) = graph_of(src);
        let facts = calls_of(&g, &files, "f");
        assert_eq!(facts.calls.len(), 2);
        for c in &facts.calls {
            assert!(matches!(c.resolution, Resolution::Resolved(_)), "{c:?}");
        }
    }

    #[test]
    fn test_region_fns_do_not_capture_names() {
        let src = "fn f() { helper(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let (files, g) = graph_of(src);
        let facts = calls_of(&g, &files, "f");
        assert!(matches!(facts.calls[0].resolution, Resolution::External));
    }

    #[test]
    fn turbofish_call_detected() {
        let src = "fn f(it: It) { let v = it.collect::<Vec<u8>>(); }\n";
        let (files, g) = graph_of(src);
        let facts = calls_of(&g, &files, "f");
        let c = facts.calls.iter().find(|c| c.name == "collect").unwrap();
        assert!(matches!(c.resolution, Resolution::External));
    }
}
