//! Static extraction and cross-checking of the metrics registry.
//!
//! `infprop_core::obs` declares every metric the project can record as an
//! enum variant (`Counter` / `Gauge` / `Hist` / `Span`) paired with a dotted
//! string name in the kind's `name()` match and an `ALL` roster array, and
//! `infprop_core::trace` declares every causal-trace span/instant name the
//! same way (`TraceEvent`). This module recovers that registry *statically*
//! from the `obs.rs` / `trace.rs` token streams, so `cargo xtask analyze`
//! can:
//!
//! * verify the registry's internal consistency (every variant named
//!   exactly once, present in `ALL`, and globally unique),
//! * cross-check every metric-shaped string literal in the workspace and in
//!   CI scripts against the registry (typos and unregistered names fail),
//! * flag orphaned variants that no production code references, and
//! * export the registry as JSON — the single source of truth CI
//!   bench-smoke validates metric snapshots against, instead of a
//!   hard-coded key list.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// The registered name kinds: the four metric enums `obs.rs` declares plus
/// the trace-event roster `trace.rs` declares in the same idiom.
pub const KINDS: [&str; 5] = ["Counter", "Gauge", "Hist", "Span", "TraceEvent"];

/// One metric: its kind, variant identifier, declared name, and the
/// declaration line (of the variant inside the enum).
#[derive(Debug, Clone)]
pub struct Metric {
    /// Enum kind: `Counter`, `Gauge`, `Hist`, `Span`, or `TraceEvent`.
    pub kind: String,
    /// Variant identifier (`EngineInteractions`).
    pub variant: String,
    /// Dotted metric name (`engine.interactions`), empty if the `name()`
    /// match has no arm for this variant.
    pub name: String,
    /// 1-based line of the variant declaration in its declaring file.
    pub line: u32,
}

/// The registry recovered from `obs.rs` (and, merged in, `trace.rs`).
#[derive(Debug, Default)]
pub struct MetricRegistry {
    /// All metrics in declaration order.
    pub metrics: Vec<Metric>,
    /// Per-kind `ALL` roster lengths as declared (`[Counter; 24]` → 24).
    pub roster_len: BTreeMap<String, usize>,
    /// Per-kind variant lists found inside the `ALL` arrays.
    pub roster: BTreeMap<String, Vec<String>>,
}

impl MetricRegistry {
    /// Every declared metric name, sorted.
    pub fn names(&self) -> BTreeSet<&str> {
        self.metrics.iter().map(|m| m.name.as_str()).collect()
    }

    /// The set of leading name segments (`engine`, `oracle`, …) — used to
    /// decide which string literals look like metric names at all.
    pub fn prefixes(&self) -> BTreeSet<&str> {
        self.metrics
            .iter()
            .filter_map(|m| m.name.split('.').next())
            .collect()
    }

    /// Folds another file's extraction into this registry (used to merge
    /// the `trace.rs` event roster into the `obs.rs` metric catalogue).
    pub fn merge(&mut self, other: MetricRegistry) {
        self.metrics.extend(other.metrics);
        self.roster_len.extend(other.roster_len);
        self.roster.extend(other.roster);
    }

    /// Serializes the registry as JSON: `{"counter": ["engine.run", …], …,
    /// "trace_event": […]}` with kinds snake_cased and names sorted.
    /// Hand-rolled (the analyzer is dependency-free), escaping is
    /// unnecessary because names are validated dotted identifiers.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, kind) in KINDS.iter().enumerate() {
            let mut names: Vec<&str> = self
                .metrics
                .iter()
                .filter(|m| m.kind == *kind && !m.name.is_empty())
                .map(|m| m.name.as_str())
                .collect();
            names.sort_unstable();
            out.push_str(&format!("  \"{}\": [", kind_json_key(kind)));
            for (j, n) in names.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{n}\""));
            }
            out.push(']');
            out.push_str(if i + 1 < KINDS.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

/// CamelCase kind → snake_case JSON key (`TraceEvent` → `trace_event`).
fn kind_json_key(kind: &str) -> String {
    let mut out = String::with_capacity(kind.len() + 2);
    for (i, c) in kind.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts the registry from `obs.rs` (or `trace.rs`) source text.
pub fn extract_registry(obs_source: &str) -> MetricRegistry {
    let toks = lex(obs_source);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let tok = |ci: usize| -> &Token { &toks[code[ci]] };

    let mut registry = MetricRegistry::default();
    // Variant declarations: `enum Kind { A, B, … }` at any position.
    for kind in KINDS {
        let mut ci = 0;
        while ci + 2 < code.len() {
            if tok(ci).is_ident("enum") && tok(ci + 1).is_ident(kind) && tok(ci + 2).is_punct('{') {
                if let Some(close) = crate::rules::matching(&toks, &code, ci + 2, '{', '}') {
                    let mut j = ci + 3;
                    while j < close {
                        let t = tok(j);
                        // Variants are idents followed by `,` or the close
                        // brace (attributes are rare here; skip groups).
                        if t.is_punct('#') && tok(j + 1).is_punct('[') {
                            j = crate::rules::matching(&toks, &code, j + 1, '[', ']')
                                .map_or(close, |c| c + 1);
                            continue;
                        }
                        if t.kind == TokenKind::Ident
                            && (j + 1 >= close || tok(j + 1).is_punct(','))
                        {
                            registry.metrics.push(Metric {
                                kind: kind.to_string(),
                                variant: t.text.clone(),
                                name: String::new(),
                                line: t.line,
                            });
                        }
                        j += 1;
                    }
                }
                break;
            }
            ci += 1;
        }
    }

    // Name arms: `Kind :: Variant => "name"`.
    let mut ci = 0;
    while ci + 5 < code.len() {
        let is_arm = tok(ci).kind == TokenKind::Ident
            && KINDS.contains(&tok(ci).text.as_str())
            && tok(ci + 1).is_punct(':')
            && tok(ci + 2).is_punct(':')
            && tok(ci + 3).kind == TokenKind::Ident
            && tok(ci + 4).is_punct('=')
            && tok(ci + 5).is_punct('>');
        if is_arm {
            if let Some(&si) = code.get(ci + 6) {
                if toks[si].kind == TokenKind::Str {
                    let kind = tok(ci).text.clone();
                    let variant = tok(ci + 3).text.clone();
                    let name = toks[si].text.trim_matches('"').to_string();
                    match registry
                        .metrics
                        .iter_mut()
                        .find(|m| m.kind == kind && m.variant == variant)
                    {
                        Some(m) if m.name.is_empty() => m.name = name,
                        Some(_) => {} // duplicate arm — consistency check catches it
                        None => {
                            // Arm for an undeclared variant: record it so the
                            // consistency check can flag it.
                            registry.metrics.push(Metric {
                                kind,
                                variant,
                                name,
                                line: tok(ci + 3).line,
                            });
                        }
                    }
                }
            }
            ci += 6;
            continue;
        }
        ci += 1;
    }

    // Rosters: `const ALL : [ Kind ; N ] = [ Variant, … ]`.
    let mut ci = 0;
    while ci + 7 < code.len() {
        let is_roster = tok(ci).is_ident("const")
            && tok(ci + 1).is_ident("ALL")
            && tok(ci + 2).is_punct(':')
            && tok(ci + 3).is_punct('[')
            && tok(ci + 4).kind == TokenKind::Ident
            && KINDS.contains(&tok(ci + 4).text.as_str());
        if is_roster {
            let kind = tok(ci + 4).text.clone();
            if let Some(&ni) = code.get(ci + 6) {
                if toks[ni].kind == TokenKind::Number {
                    if let Ok(n) = toks[ni].text.parse::<usize>() {
                        registry.roster_len.insert(kind.clone(), n);
                    }
                }
            }
            // The initializer array: variants appear as `Kind::Variant`.
            if let Some(open) = (ci + 7..code.len()).find(|&j| tok(j).is_punct('[')) {
                if let Some(close) = crate::rules::matching(&toks, &code, open, '[', ']') {
                    let mut items = Vec::new();
                    let mut j = open + 1;
                    while j + 2 < close {
                        if tok(j).is_ident(&kind)
                            && tok(j + 1).is_punct(':')
                            && tok(j + 2).is_punct(':')
                            && tok(j + 3).kind == TokenKind::Ident
                        {
                            items.push(tok(j + 3).text.clone());
                            j += 4;
                            continue;
                        }
                        j += 1;
                    }
                    registry.roster.insert(kind, items);
                    ci = close;
                }
            }
        }
        ci += 1;
    }

    registry
}

/// Internal-consistency findings for a registry: each is a `(line, message)`
/// pair pointing into `obs.rs`.
pub fn check_registry(reg: &MetricRegistry) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut seen_names: BTreeMap<&str, &Metric> = BTreeMap::new();
    for m in &reg.metrics {
        if m.name.is_empty() {
            out.push((
                m.line,
                format!(
                    "metric variant `{}::{}` has no `name()` arm",
                    m.kind, m.variant
                ),
            ));
            continue;
        }
        if let Some(prev) = seen_names.insert(m.name.as_str(), m) {
            out.push((
                m.line,
                format!(
                    "metric name `{}` declared twice: `{}::{}` and `{}::{}`",
                    m.name, prev.kind, prev.variant, m.kind, m.variant
                ),
            ));
        }
        let shaped = m.name.split('.').count() >= 2
            && m.name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_');
        if !shaped {
            out.push((
                m.line,
                format!(
                    "metric name `{}` is not dotted lower_snake (`prefix.name`)",
                    m.name
                ),
            ));
        }
    }
    for kind in KINDS {
        let declared: Vec<&Metric> = reg.metrics.iter().filter(|m| m.kind == kind).collect();
        let roster = reg.roster.get(kind).cloned().unwrap_or_default();
        if let Some(&n) = reg.roster_len.get(kind) {
            if n != roster.len() {
                out.push((
                    1,
                    format!(
                        "`{kind}::ALL` declares length {n} but lists {} variants",
                        roster.len()
                    ),
                ));
            }
        }
        for m in &declared {
            if !roster.contains(&m.variant) {
                out.push((
                    m.line,
                    format!(
                        "metric variant `{kind}::{}` missing from `{kind}::ALL`",
                        m.variant
                    ),
                ));
            }
        }
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for v in &roster {
            *counts.entry(v.as_str()).or_default() += 1;
        }
        for (v, c) in counts {
            if c > 1 {
                out.push((1, format!("`{kind}::ALL` lists `{v}` {c} times")));
            }
            if !declared.iter().any(|m| m.variant == v) {
                out.push((1, format!("`{kind}::ALL` lists undeclared variant `{v}`")));
            }
        }
    }
    out
}

/// File-name extensions that make a dotted literal a *path*, not a metric
/// (`"delta.rs"` must not be flagged as an unregistered `delta.*` metric).
const PATH_SUFFIXES: [&str; 12] = [
    "rs", "json", "txt", "toml", "md", "yml", "yaml", "lock", "gz", "csv", "bin", "tmp",
];

/// True if a string literal's contents look like a metric name the registry
/// should know: dotted lower_snake with a registered prefix and no
/// file-extension tail.
pub fn is_metric_shaped(text: &str, prefixes: &BTreeSet<&str>) -> bool {
    let mut parts = text.split('.');
    let Some(head) = parts.next() else {
        return false;
    };
    let rest: Vec<&str> = parts.collect();
    if rest.is_empty() || !prefixes.contains(head) {
        return false;
    }
    if let Some(last) = rest.last() {
        if PATH_SUFFIXES.contains(last) {
            return false;
        }
    }
    text.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
}

/// Scans Rust source for metric-shaped string literals not present in the
/// registry. Returns `(line, literal)` pairs.
pub fn unregistered_literals(source: &str, reg: &MetricRegistry) -> Vec<(u32, String)> {
    let names = reg.names();
    let prefixes = reg.prefixes();
    let toks = lex(source);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    // Test modules routinely hold deliberately-bogus metric strings
    // (typo fixtures); only library code is held to the registry.
    let mask = crate::rules::test_region_mask(&toks, &code);
    code.iter()
        .enumerate()
        .filter(|&(ci, &i)| toks[i].kind == TokenKind::Str && !mask[ci])
        .filter_map(|(_, &i)| {
            let t = &toks[i];
            let inner = t
                .text
                .trim_start_matches(['r', 'b', 'c', '#'])
                .trim_matches(['#', '"']);
            (is_metric_shaped(inner, &prefixes) && !names.contains(inner))
                .then(|| (t.line, inner.to_string()))
        })
        .collect()
}

/// Scans a non-Rust text file (CI YAML, embedded python) for quoted
/// metric-shaped literals not present in the registry.
pub fn unregistered_literals_text(source: &str, reg: &MetricRegistry) -> Vec<(u32, String)> {
    let names = reg.names();
    let prefixes = reg.prefixes();
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        for quote in ['"', '\''] {
            let mut rest = line;
            while let Some(start) = rest.find(quote) {
                let after = &rest[start + 1..];
                let Some(end) = after.find(quote) else {
                    break;
                };
                let lit = &after[..end];
                if is_metric_shaped(lit, &prefixes) && !names.contains(lit) {
                    out.push((u32::try_from(i + 1).unwrap_or(u32::MAX), lit.to_string()));
                }
                rest = &after[end + 1..];
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Scans Rust source for `Kind::Variant` references; returns the referenced
/// `(kind, variant)` pairs. Used for orphan detection (a variant never
/// referenced outside `obs.rs` is dead weight).
pub fn variant_references(source: &str) -> BTreeSet<(String, String)> {
    let toks = lex(source);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut out = BTreeSet::new();
    for w in code.windows(4) {
        let [a, b, c, d] = [&toks[w[0]], &toks[w[1]], &toks[w[2]], &toks[w[3]]];
        if a.kind == TokenKind::Ident
            && KINDS.contains(&a.text.as_str())
            && b.is_punct(':')
            && c.is_punct(':')
            && d.kind == TokenKind::Ident
        {
            out.insert((a.text.clone(), d.text.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBS: &str = r#"
pub enum Counter { EngineRuns, OracleHits, }
impl Counter {
    pub const ALL: [Counter; 2] = [Counter::EngineRuns, Counter::OracleHits];
    pub fn name(self) -> &'static str {
        match self {
            Counter::EngineRuns => "engine.runs",
            Counter::OracleHits => "oracle.hits",
        }
    }
}
pub enum Gauge { EngineDepth, }
impl Gauge {
    pub const ALL: [Gauge; 1] = [Gauge::EngineDepth];
    pub fn name(self) -> &'static str {
        match self { Gauge::EngineDepth => "engine.depth" }
    }
}
"#;

    #[test]
    fn extracts_variants_names_and_rosters() {
        let reg = extract_registry(OBS);
        assert_eq!(reg.metrics.len(), 3);
        let names = reg.names();
        assert!(names.contains("engine.runs"));
        assert!(names.contains("engine.depth"));
        assert_eq!(reg.roster_len["Counter"], 2);
        assert_eq!(reg.roster["Counter"], vec!["EngineRuns", "OracleHits"]);
        assert!(check_registry(&reg).is_empty());
    }

    #[test]
    fn consistency_catches_missing_arm_and_roster_drift() {
        let broken = OBS.replace("Counter::OracleHits => \"oracle.hits\",", "");
        let reg = extract_registry(&broken);
        let msgs: Vec<String> = check_registry(&reg).into_iter().map(|(_, m)| m).collect();
        assert!(
            msgs.iter().any(|m| m.contains("no `name()` arm")),
            "{msgs:?}"
        );
        let drifted = OBS.replace("[Counter; 2]", "[Counter; 3]");
        let reg = extract_registry(&drifted);
        let msgs: Vec<String> = check_registry(&reg).into_iter().map(|(_, m)| m).collect();
        assert!(
            msgs.iter().any(|m| m.contains("declares length 3")),
            "{msgs:?}"
        );
    }

    #[test]
    fn literal_scan_flags_typos_not_paths() {
        let reg = extract_registry(OBS);
        let src = "fn f() {\n    let a = \"engine.rns\";\n    let p = \"engine.rs\";\n    let ok = \"engine.runs\";\n}\n";
        let bad = unregistered_literals(src, &reg);
        assert_eq!(bad, vec![(2, "engine.rns".to_string())]);
    }

    #[test]
    fn text_scan_finds_quoted_typos() {
        let reg = extract_registry(OBS);
        let yaml = "          assert \"oracle.hits\" in keys\n          assert 'oracle.hit_rate' in keys\n";
        let bad = unregistered_literals_text(yaml, &reg);
        assert_eq!(bad, vec![(2, "oracle.hit_rate".to_string())]);
    }

    #[test]
    fn variant_reference_scan() {
        let refs = variant_references("fn f(r: &R) { r.incr(Counter::EngineRuns, 1); }");
        assert!(refs.contains(&("Counter".to_string(), "EngineRuns".to_string())));
    }

    #[test]
    fn json_export_is_sorted_and_grouped() {
        let reg = extract_registry(OBS);
        let json = reg.to_json();
        assert!(json.contains("\"counter\": [\"engine.runs\", \"oracle.hits\"]"));
        assert!(json.contains("\"gauge\": [\"engine.depth\"]"));
        assert!(json.contains("\"hist\": []"));
    }

    const TRACE: &str = r#"
pub enum TraceEvent { QueryBatch, QueryElement, }
impl TraceEvent {
    pub const ALL: [TraceEvent; 2] = [TraceEvent::QueryBatch, TraceEvent::QueryElement];
    pub fn name(self) -> &'static str {
        match self {
            TraceEvent::QueryBatch => "query.batch",
            TraceEvent::QueryElement => "query.element",
        }
    }
}
"#;

    #[test]
    fn extracts_and_merges_trace_events() {
        let mut reg = extract_registry(OBS);
        reg.merge(extract_registry(TRACE));
        assert!(check_registry(&reg).is_empty());
        assert!(reg.names().contains("query.batch"));
        assert_eq!(reg.roster["TraceEvent"], vec!["QueryBatch", "QueryElement"]);
        let json = reg.to_json();
        assert!(
            json.contains("\"trace_event\": [\"query.batch\", \"query.element\"]"),
            "{json}"
        );
    }

    #[test]
    fn trace_event_roster_drift_is_caught() {
        let drifted = TRACE.replace("TraceEvent::QueryElement => \"query.element\",", "");
        let reg = extract_registry(&drifted);
        let msgs: Vec<String> = check_registry(&reg).into_iter().map(|(_, m)| m).collect();
        assert!(
            msgs.iter().any(|m| m.contains("no `name()` arm")),
            "{msgs:?}"
        );
    }

    #[test]
    fn trace_event_references_count_for_orphan_detection() {
        let refs = variant_references("let sp = tracer.begin(t, p, TraceEvent::QueryBatch);");
        assert!(refs.contains(&("TraceEvent".to_string(), "QueryBatch".to_string())));
    }
}
