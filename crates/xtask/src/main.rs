#![forbid(unsafe_code)]

//! `cargo xtask` — workspace automation entry point.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{analyze_workspace, find_workspace_root, lint_workspace};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  lint [--root <dir>]   Run the project lint rules over the workspace.
                        Exits 1 if any rule fires, printing one
                        `path:line: [rule] message` diagnostic per finding.
  analyze [--root <dir>] [--format text|json] [--emit-registry <path>]
                        Run the call-graph-aware semantic passes:
                        transitive alloc-free / no-panic / kernel contract
                        verification, metrics-registry consistency, and
                        stale-waiver detection. Exits 1 on any diagnostic.
                        --emit-registry writes the metric catalogue
                        extracted from obs.rs as JSON (for CI cross-checks).

Lint rules: no-panic, no-lossy-cast, no-default-hashmap, pub-docs,
            forbid-unsafe, no-print, no-raw-timing.
Contracts:  // xtask-contract: alloc-free | no-panic | kernel
Waive a finding inline with `// xtask-allow: <rule>[, <rule>…]` on the
offending line or the line before.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown xtask command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Resolves `--root` (explicit or discovered from the current directory),
/// returning an error exit code on failure.
fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    match root {
        Some(r) => Ok(r),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return Err(ExitCode::from(2));
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => Ok(r),
                None => {
                    eprintln!(
                        "error: no workspace root (Cargo.toml with [workspace]) above {}",
                        cwd.display()
                    );
                    Err(ExitCode::from(2))
                }
            }
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                if let Some(dir) = args.get(i + 1) {
                    root = Some(PathBuf::from(dir));
                    i += 2;
                } else {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("error: unknown lint option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };

    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: lint walk failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn analyze(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut emit_registry: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                if let Some(dir) = args.get(i + 1) {
                    root = Some(PathBuf::from(dir));
                    i += 2;
                } else {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            }
            "--format" => match args.get(i + 1).map(String::as_str) {
                Some(f @ ("text" | "json")) => {
                    format = f.to_string();
                    i += 2;
                }
                _ => {
                    eprintln!("error: --format requires `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--emit-registry" => {
                if let Some(path) = args.get(i + 1) {
                    emit_registry = Some(PathBuf::from(path));
                    i += 2;
                } else {
                    eprintln!("error: --emit-registry requires a file argument");
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("error: unknown analyze option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: analyze walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = emit_registry {
        if let Err(e) = std::fs::write(&path, report.registry.to_json()) {
            eprintln!("error: cannot write registry to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if format == "json" {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }
    if report.diagnostics.is_empty() {
        if format == "text" {
            println!("xtask analyze: clean");
        }
        ExitCode::SUCCESS
    } else {
        if format == "text" {
            println!("xtask analyze: {} diagnostic(s)", report.diagnostics.len());
        }
        ExitCode::FAILURE
    }
}
