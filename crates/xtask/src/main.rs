#![forbid(unsafe_code)]

//! `cargo xtask` — workspace automation entry point.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{find_workspace_root, lint_workspace};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  lint [--root <dir>]   Run the project lint rules over the workspace.
                        Exits 1 if any rule fires, printing one
                        `path:line: [rule] message` diagnostic per finding.

Rules: no-panic, no-lossy-cast, no-default-hashmap, pub-docs,
       forbid-unsafe, no-print, no-raw-timing.
Waive a finding inline with `// xtask-allow: <rule>[, <rule>…]` on the
offending line or the line before.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown xtask command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                if let Some(dir) = args.get(i + 1) {
                    root = Some(PathBuf::from(dir));
                    i += 2;
                } else {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("error: unknown lint option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no workspace root (Cargo.toml with [workspace]) above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: lint walk failed: {e}");
            ExitCode::from(2)
        }
    }
}
