//! Mini metric registry: one live variant, one orphan, one waived spare.

/// Fixture counters.
#[derive(Clone, Copy)]
pub enum Counter {
    /// Referenced from `lib.rs`.
    EngineRuns,
    /// Never referenced outside this file — the seeded orphan.
    EngineIdle,
    /// Also unreferenced, but explicitly reserved.
    // xtask-allow: metric-orphan (reserved for the next fixture revision)
    EngineSpare,
}

impl Counter {
    /// The dotted metric name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EngineRuns => "engine.runs",
            Counter::EngineIdle => "engine.idle",
            Counter::EngineSpare => "engine.spare",
        }
    }
}

/// Roster of every counter.
pub const ALL: [Counter; 3] = [Counter::EngineRuns, Counter::EngineIdle, Counter::EngineSpare];
