//! Seeded violation: a metric-shaped literal with a typo.

pub mod obs;

/// Returns a typo'd metric key next to the real variant.
pub fn run() -> (&'static str, obs::Counter) {
    ("engine.rns", obs::Counter::EngineRuns)
}
