//! Seeded violation: a `kernel` contract reaching `panic!`. The assert
//! and the indexing in the contracted fn itself are *legal* under
//! `kernel` and must not be reported.

/// Contracted kernel; indexing and assert are fine, `step`'s panic is not.
// xtask-contract: kernel
pub fn kernel_probe(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    step(xs[0])
}

fn step(x: u64) -> u64 {
    if x > 10 {
        panic!("too big");
    }
    x + 1
}
