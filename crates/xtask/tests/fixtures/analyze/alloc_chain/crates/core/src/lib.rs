//! Seeded violation: a contracted fn reaches allocation two hops away,
//! plus a direct allocating constructor.

/// Accumulates samples.
pub struct Acc {
    vals: Vec<u64>,
}

impl Acc {
    /// Contracted entry point; the allocation hides in `note`.
    // xtask-contract: alloc-free
    pub fn tally(&mut self, x: u64) {
        self.note(x);
    }

    fn note(&mut self, x: u64) {
        self.vals.push(x);
    }
}

/// Allocates a fresh buffer despite its contract.
// xtask-contract: alloc-free
pub fn scratch() -> Vec<u64> {
    Vec::new()
}
