//! Seeded violations: a waiver that suppresses nothing and a waiver
//! naming an unknown rule.

/// Adds one.
pub fn add_one(x: u64) -> u64 {
    // xtask-allow: no-panic (nothing here panics)
    x + 1
}

/// Doubles.
pub fn double(x: u64) -> u64 {
    // xtask-allow: no-pannic (typo in the rule name)
    x * 2
}
