//! Seeded violation: a `no-panic` contract reaching `unwrap` and an
//! indexing expression through a helper.

/// Contracted entry point; the panics hide in `helper`.
// xtask-contract: no-panic
pub fn entry(xs: &[u64]) -> u64 {
    helper(xs)
}

fn helper(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap();
    first + xs[0]
}
