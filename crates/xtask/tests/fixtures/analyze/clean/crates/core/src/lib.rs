//! Clean fixture: contracts hold and the one waiver is consumed by lint.

/// Register-wise maximum, alloc- and panic-free by construction.
// xtask-contract: alloc-free, kernel
pub fn fold_max(acc: &mut [u8], src: &[u8]) {
    for (a, &b) in acc.iter_mut().zip(src) {
        if b > *a {
            *a = b;
        }
    }
}

/// Deliberate truncation; the waiver below is consumed by `no-lossy-cast`.
pub fn low_byte(x: u64) -> u8 {
    // xtask-allow: no-lossy-cast (deliberate truncation)
    x as u8
}
