//! Golden-file tests for `cargo xtask analyze`.
//!
//! Each directory under `tests/fixtures/analyze/` is a mini-workspace with
//! one seeded violation class (or none, for `clean`). The analyzer's
//! rendered diagnostics must match the committed `expected.txt` byte for
//! byte — covering the item parser, call-graph resolution, and all four
//! semantic passes end to end.

use std::path::{Path, PathBuf};
use xtask::analyze::analyze_workspace;

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/analyze")
        .join(case)
}

/// Runs the analyzer over a fixture and renders its diagnostics the way
/// the CLI does.
fn rendered(case: &str) -> String {
    let report = analyze_workspace(&fixture_root(case)).expect("fixture analyzes");
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

fn golden(case: &str) {
    let expected = std::fs::read_to_string(fixture_root(case).join("expected.txt"))
        .expect("fixture has expected.txt");
    let actual = rendered(case);
    assert_eq!(
        actual, expected,
        "analyzer output for `{case}` diverged from expected.txt\n--- actual ---\n{actual}"
    );
}

#[test]
fn alloc_chain_reports_transitive_allocation_with_chain() {
    golden("alloc_chain");
    // The two-hop chain must name both frames.
    let out = rendered("alloc_chain");
    assert!(out.contains("via Acc::tally"));
    assert!(out.contains("-> Acc::note"));
    assert!(out.contains("allocating constructor `Vec::new`"));
}

#[test]
fn panic_chain_reports_unwrap_and_indexing() {
    golden("panic_chain");
    let out = rendered("panic_chain");
    assert!(out.contains("panicking call `.unwrap()`"));
    assert!(out.contains("indexing expression"));
}

#[test]
fn kernel_contract_permits_assert_and_indexing_but_not_panic() {
    golden("kernel_macro");
    let out = rendered("kernel_macro");
    assert!(out.contains("panicking macro `panic!`"));
    // `assert!` and `xs[0]` inside the contracted kernel are legal.
    assert!(!out.contains("assert"));
    assert!(!out.contains("indexing"));
}

#[test]
fn metric_typo_and_orphan_are_reported_but_waived_spare_is_not() {
    golden("metric_typo");
    let out = rendered("metric_typo");
    assert!(out.contains("`\"engine.rns\"` is not in the obs registry"));
    assert!(out.contains("orphaned metric `Counter::EngineIdle`"));
    assert!(
        !out.contains("EngineSpare"),
        "metric-orphan waiver must hold"
    );
}

#[test]
fn stale_and_unknown_waivers_are_reported() {
    golden("stale_waiver");
    let out = rendered("stale_waiver");
    assert!(out.contains("suppresses nothing"));
    assert!(out.contains("`xtask-allow: no-pannic` names no known rule"));
}

#[test]
fn clean_fixture_has_no_diagnostics() {
    golden("clean");
    assert!(rendered("clean").is_empty());
}

#[test]
fn json_output_carries_pass_and_chain() {
    let report = analyze_workspace(&fixture_root("alloc_chain")).expect("fixture analyzes");
    let json = report.to_json();
    assert!(json.contains("\"pass\": \"alloc-free\""));
    assert!(json.contains("\"chain\": ["));
    assert!(json.contains("\"count\": 2"));
}

#[test]
fn registry_json_is_emitted_from_fixture_obs() {
    let report = analyze_workspace(&fixture_root("metric_typo")).expect("fixture analyzes");
    let json = report.registry.to_json();
    assert!(json.contains("engine.runs"));
    assert!(json.contains("engine.idle"));
    assert!(json.contains("engine.spare"));
}
