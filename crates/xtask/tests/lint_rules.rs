//! End-to-end tests for the lint engine: synthetic crates on disk are
//! walked, linted, and must produce exactly the expected diagnostics.

use std::fs;
use std::path::Path;

use xtask::workspace::rules_for_crate;
use xtask::{lint_workspace, FileContext, Rule, Violation};

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, contents).unwrap();
}

/// Builds a miniature workspace in a temp dir and lints it.
fn lint_fixture(files: &[(&str, &str)]) -> Vec<Violation> {
    let dir = std::env::temp_dir().join(format!(
        "xtask-lint-fixture-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    write(
        &dir,
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/*\"]\n",
    );
    for (rel, contents) in files {
        write(&dir, rel, contents);
    }
    let violations = lint_workspace(&dir).unwrap();
    let _ = fs::remove_dir_all(&dir);
    violations
}

#[test]
fn clean_workspace_produces_no_violations() {
    let violations = lint_fixture(&[
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"infprop-core\"\n",
        ),
        (
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n//! Core.\n\n/// Adds.\npub fn add(a: u64, b: u64) -> u64 { a + b }\n",
        ),
    ]);
    assert!(violations.is_empty(), "unexpected: {violations:?}");
}

#[test]
fn seeded_unwrap_fails_with_file_line_diagnostic() {
    let violations = lint_fixture(&[
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"infprop-core\"\n",
        ),
        (
            "crates/core/src/engine.rs",
            "//! Engine.\n\n/// Runs.\npub fn run(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        ),
        (
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n//! Core.\npub mod engine;\n",
        ),
    ]);
    let panics: Vec<&Violation> = violations
        .iter()
        .filter(|v| v.rule == Rule::NoPanic)
        .collect();
    assert_eq!(panics.len(), 1);
    let v = panics[0];
    assert_eq!(v.file, Path::new("crates/core/src/engine.rs"));
    assert_eq!(v.line, 5);
    let rendered = v.to_string();
    assert!(
        rendered.starts_with("crates/core/src/engine.rs:5: [no-panic]"),
        "bad diagnostic: {rendered}"
    );
}

#[test]
fn tests_dir_and_cfg_test_are_exempt() {
    let violations = lint_fixture(&[
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"infprop-core\"\n",
        ),
        (
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n//! Core.\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n",
        ),
        (
            "crates/core/tests/integration.rs",
            "fn main() { None::<u8>.unwrap(); panic!(); }\n",
        ),
        (
            "crates/core/benches/bench.rs",
            "fn main() { None::<u8>.unwrap(); }\n",
        ),
    ]);
    assert!(violations.is_empty(), "unexpected: {violations:?}");
}

#[test]
fn allow_comment_waives_exactly_the_named_rule() {
    let violations = lint_fixture(&[
        ("crates/hll/Cargo.toml", "[package]\nname = \"infprop-hll\"\n"),
        (
            "crates/hll/src/lib.rs",
            concat!(
                "#![forbid(unsafe_code)]\n",
                "//! Sketches.\n\n",
                "/// Widens.\n",
                "pub fn widen(x: u32) -> usize {\n",
                "    x as usize // xtask-allow: no-lossy-cast (u32 -> usize widens on every supported target)\n",
                "}\n\n",
                "/// Truncates — no allow, must fire.\n",
                "pub fn truncate(x: u64) -> u32 {\n",
                "    x as u32\n",
                "}\n",
            ),
        ),
    ]);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, Rule::NoLossyCast);
    assert_eq!(violations[0].line, 11);
}

#[test]
fn missing_forbid_unsafe_fires_only_on_crate_roots() {
    let violations = lint_fixture(&[
        (
            "crates/cli/Cargo.toml",
            "[package]\nname = \"infprop-cli\"\n",
        ),
        ("crates/cli/src/main.rs", "fn main() {}\n"),
        ("crates/cli/src/commands.rs", "pub fn run() {}\n"),
    ]);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, Rule::ForbidUnsafe);
    assert_eq!(violations[0].file, Path::new("crates/cli/src/main.rs"));
    assert_eq!(violations[0].line, 1);
}

#[test]
fn scoping_policy_matches_crate_roles() {
    // Hot-path crates get the hasher ban; tooling crates get almost nothing.
    assert!(rules_for_crate("core").contains(&Rule::NoDefaultHashmap));
    assert!(rules_for_crate("hll").contains(&Rule::NoDefaultHashmap));
    assert!(!rules_for_crate("temporal-graph").contains(&Rule::NoDefaultHashmap));
    assert!(rules_for_crate("temporal-graph").contains(&Rule::NoLossyCast));
    assert!(!rules_for_crate("datasets").contains(&Rule::NoLossyCast));
    assert_eq!(rules_for_crate("bench"), vec![Rule::ForbidUnsafe]);
    assert_eq!(rules_for_crate("xtask"), vec![Rule::ForbidUnsafe]);
    assert!(rules_for_crate("cli").contains(&Rule::NoPanic));
    assert!(!rules_for_crate("cli").contains(&Rule::PubDocs));
    assert!(!rules_for_crate("cli").contains(&Rule::NoPrint));
    for krate in ["core", "hll", "temporal-graph", "datasets", "infprop"] {
        assert!(rules_for_crate(krate).contains(&Rule::ForbidUnsafe));
        assert!(rules_for_crate(krate).contains(&Rule::PubDocs));
    }
}

#[test]
fn hashmap_flagged_in_core_but_not_datasets() {
    let core_src = "#![forbid(unsafe_code)]\n//! X.\nuse std::collections::HashMap;\n";
    let datasets_src = core_src;
    let violations = lint_fixture(&[
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"infprop-core\"\n",
        ),
        ("crates/core/src/lib.rs", core_src),
        (
            "crates/datasets/Cargo.toml",
            "[package]\nname = \"infprop-datasets\"\n",
        ),
        ("crates/datasets/src/lib.rs", datasets_src),
    ]);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, Rule::NoDefaultHashmap);
    assert_eq!(violations[0].file, Path::new("crates/core/src/lib.rs"));
}

#[test]
fn delta_rs_raw_timing_cannot_be_waived() {
    // An `xtask-allow: no-raw-timing` comment silences the rule in ordinary
    // core files, but `core/src/delta.rs` is unwaivable: the append/compact
    // path must stay clock-free, so the violation fires anyway.
    let src = concat!(
        "#![forbid(unsafe_code)]\n",
        "//! Delta.\n\n",
        "/// Ticks.\n",
        "pub fn tick() {\n",
        "    let _t = std::time::Instant::now(); // xtask-allow: no-raw-timing (nope)\n",
        "}\n",
    );
    let violations = lint_fixture(&[
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"infprop-core\"\n",
        ),
        (
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n//! Core.\npub mod delta;\npub mod engine;\n",
        ),
        ("crates/core/src/delta.rs", src),
        (
            "crates/core/src/engine.rs",
            src.replace("Delta", "Engine").leak(),
        ),
    ]);
    let timing: Vec<&Violation> = violations
        .iter()
        .filter(|v| v.rule == Rule::NoRawTiming)
        .collect();
    assert_eq!(timing.len(), 1, "{violations:?}");
    assert_eq!(timing[0].file, Path::new("crates/core/src/delta.rs"));
    assert!(
        timing[0].message.contains("unwaivable"),
        "{}",
        timing[0].message
    );
}

#[test]
fn lint_file_is_usable_as_a_library() {
    let ctx = FileContext {
        path: "x.rs".into(),
        rules: vec![Rule::NoPanic],
        unwaivable: Vec::new(),
        is_crate_root: false,
    };
    let violations = xtask::lint_file(&ctx, "fn f() { todo!() }");
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, Rule::NoPanic);
}
