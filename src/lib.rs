//! # infprop — Information Propagation in Interaction Networks
//!
//! A from-scratch Rust reproduction of *Information Propagation in
//! Interaction Networks* (Rohit Kumar and Toon Calders, EDBT 2017): finding
//! potential information flow in networks of timestamped interactions via
//! **time-window-constrained information channels**, with an exact and a
//! versioned-HyperLogLog approximate one-pass algorithm, influence oracles,
//! and greedy influence maximization.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! * [`graph`] — interaction-network substrate (`infprop-temporal-graph`)
//! * [`sketch`] — HyperLogLog and versioned HLL (`infprop-hll`)
//! * [`irs`] — the paper's algorithms (`infprop-core`)
//! * [`diffusion`] — the TCIC simulation model (`infprop-diffusion`)
//! * [`baselines`] — PageRank / HD / SHD / SKIM / ConTinEst (`infprop-baselines`)
//! * [`datasets`] — toy and synthetic interaction networks (`infprop-datasets`)
//!
//! Beyond the paper, the core crate ships channel-witness extraction
//! ([`irs::find_channel`]), streaming one-pass builders
//! ([`irs::ExactIrsStream`], [`irs::ApproxIrsStream`]), sliding-window
//! contact profiles ([`irs::SlidingContacts`]) and binary persistence for
//! summaries, sketches and oracles; the diffusion crate adds the TC-LT
//! cascade model ([`diffusion::tclt_run`]).
//!
//! All four IRS entry points are thin wrappers over one generic driver,
//! [`irs::ReversePassEngine`], parameterized by the [`irs::SummaryStore`]
//! backend trait ([`irs::ExactStore`] or [`irs::VhllStore`]); custom
//! backends (sharded, instrumented, …) plug in without touching callers.
//!
//! ## Quickstart
//!
//! ```
//! use infprop::prelude::*;
//!
//! // The toy network of Figure 2 in the paper (a..f = 0..5).
//! let net = InteractionNetwork::from_triples([
//!     (0, 1, 1), // a -> b @ 1
//!     (0, 3, 2), // a -> d @ 2
//!     (1, 2, 4),
//!     (3, 2, 3),
//!     (2, 4, 3),
//!     (2, 5, 5),
//!     (5, 2, 8),
//!     (2, 5, 8),
//! ]);
//!
//! // Exact influence-reachability sets for window ω = 3.
//! let irs = ExactIrs::compute(&net, Window(3));
//! let sigma_a: usize = irs.irs_size(NodeId(0));
//! assert!(sigma_a >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use infprop_baselines as baselines;
pub use infprop_core as irs;
pub use infprop_datasets as datasets;
pub use infprop_diffusion as diffusion;
pub use infprop_hll as sketch;
pub use infprop_temporal_graph as graph;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use infprop_baselines::{
        degree_discount, high_degree, pagerank, smart_high_degree, ConTinEst, Skim,
    };
    pub use infprop_core::{
        find_channel, greedy_top_k, ApproxIrs, ApproxIrsStream, Channel, ExactIrs, ExactIrsStream,
        HeapBytes, InfluenceOracle, MetricsRecorder, MetricsSnapshot, NoopRecorder, Recorder,
        ReversePassEngine, SummaryStore,
    };
    pub use infprop_datasets::{profiles, toy};
    pub use infprop_diffusion::{tcic_spread, tclt_spread, LtWeights, TcicConfig};
    pub use infprop_hll::{HyperLogLog, VersionedHll};
    pub use infprop_temporal_graph::{
        Interaction, InteractionNetwork, NetworkStats, NodeId, StaticGraph, Timestamp,
        WeightedStaticGraph, Window,
    };
}
