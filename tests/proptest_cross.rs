//! Cross-crate property tests tying the IRS semantics to the TCIC cascade
//! model — the two halves of the paper's story.
//!
//! The key identity: with infection probability 1 and distinct timestamps,
//! a TCIC cascade from a single seed `u` under window `W` infects exactly
//! `{u} ∪ σ_{W+1}(u)`. (TCIC admits a hop when `t − anchor ≤ W`, i.e.
//! channel duration `≤ W + 1` in the paper's inclusive convention, and a
//! seed re-anchors at each of its interactions — precisely the set of
//! admissible channel start points.)

use infprop::prelude::*;
use proptest::prelude::*;

/// Random distinct-timestamp networks.
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..12, 0u32..12), 1..50).prop_map(|pairs| {
        InteractionNetwork::from_triples(
            pairs
                .into_iter()
                .enumerate()
                .map(|(i, (s, d))| (s, d, i as i64)),
        )
    })
}

proptest! {
    /// TCIC at p = 1 from one seed == exact IRS at window W+1, plus the
    /// seed itself.
    #[test]
    fn tcic_p1_equals_irs_shifted_window(net in networks(), w in 1i64..60, seed_node in 0u32..12) {
        if (seed_node as usize) < net.num_nodes() {
            let seed = NodeId(seed_node);
            let irs = ExactIrs::compute(&net, Window(w + 1));
            let cfg = TcicConfig::new(Window(w), 1.0).with_runs(1);
            let spread = tcic_spread(&net, &[seed], &cfg);
            // A seed with no outgoing interaction never activates (Algorithm
            // 1 activates seeds at their interactions); its IRS is empty too.
            let has_out = net.iter().any(|i| i.src == seed);
            let expected = if has_out {
                irs.irs_size(seed) as f64 + 1.0
            } else {
                0.0
            };
            prop_assert_eq!(spread, expected,
                "seed {:?} w {}: spread {} irs {}", seed, w, spread, expected);
        }
    }

    /// Monotonicity: TCIC spread at p = 1 never decreases with the window.
    #[test]
    fn tcic_spread_monotone_in_window(net in networks(), w in 1i64..40, extra in 0i64..40, s in 0u32..12) {
        if (s as usize) < net.num_nodes() {
            let small = tcic_spread(&net, &[NodeId(s)], &TcicConfig::new(Window(w), 1.0).with_runs(1));
            let large = tcic_spread(&net, &[NodeId(s)], &TcicConfig::new(Window(w + extra), 1.0).with_runs(1));
            prop_assert!(large >= small);
        }
    }

    /// The influence oracle never exceeds the number of nodes, and greedy
    /// cumulative influence is bounded by it.
    #[test]
    fn influence_bounded_by_n(net in networks(), w in 1i64..60, k in 1usize..6) {
        let irs = ExactIrs::compute(&net, Window(w));
        let oracle = irs.oracle();
        let picks = greedy_top_k(&oracle, k);
        if let Some(last) = picks.last() {
            prop_assert!(last.cumulative <= net.num_nodes() as f64);
        }
    }

    /// Seeding every node reaches every node that has any in- or
    /// out-interaction (p = 1, unbounded window).
    #[test]
    fn seeding_everyone_reaches_active_nodes(net in networks()) {
        let all: Vec<NodeId> = net.node_ids().collect();
        let spread = tcic_spread(&net, &all, &TcicConfig::new(Window::unbounded(), 1.0).with_runs(1));
        let active = net
            .node_ids()
            .filter(|&u| net.iter().any(|i| i.src == u || i.dst == u))
            .count();
        // Every node with an outgoing interaction self-activates; every
        // destination of such an interaction gets infected.
        prop_assert!(spread >= net.iter().map(|i| i.src).collect::<std::collections::HashSet<_>>().len() as f64);
        prop_assert!(spread <= active as f64);
    }
}

/// Persistence fuzz at the oracle level: mutated oracle files either load
/// (and answer queries without panicking) or fail with a clean error.
mod oracle_codec_fuzz {
    use infprop::irs::{ApproxIrs, ApproxOracle, InfluenceOracle};
    use infprop::prelude::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mutated_oracle_never_panics(
            pairs in prop::collection::vec((0u32..20, 0u32..20), 1..60),
            pos_seed in any::<usize>(),
            new_byte in any::<u8>(),
        ) {
            let net = InteractionNetwork::from_triples(
                pairs.into_iter().enumerate().map(|(i, (s, d))| (s, d, i as i64)),
            );
            let irs = ApproxIrs::compute_with_precision(&net, Window(10), 4);
            let mut bytes = Vec::new();
            irs.oracle().write_to(&mut bytes).unwrap();
            let pos = pos_seed % bytes.len();
            bytes[pos] = new_byte;
            if let Ok(oracle) = ApproxOracle::read_from(&mut bytes.as_slice()) {
                // Whatever loaded must be queryable without panicking.
                let seeds: Vec<NodeId> =
                    (0..oracle.num_nodes().min(3)).map(NodeId::from_index).collect();
                let _ = oracle.influence(&seeds);
            }
        }
    }
}
