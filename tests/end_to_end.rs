//! Cross-crate integration tests: the full pipeline from dataset generation
//! through IRS computation, oracle queries, seed selection and TCIC
//! evaluation.

use infprop::irs::{brute_force_irs, greedy_top_k_paper};
use infprop::prelude::*;

#[test]
fn full_pipeline_on_synthetic_email_network() {
    let dataset = infprop::datasets::profiles::enron_like(11).build(0.002);
    let net = &dataset.network;
    assert!(net.num_interactions() > 1_000);
    let window = net.window_from_percent(5.0);

    // Build both IRS representations.
    let exact = ExactIrs::compute(net, window);
    let approx = ApproxIrs::compute(net, window);

    // Approximation quality: average relative error within a few sketch
    // standard errors (beta = 512 -> ~4.6%).
    let mut err = 0.0;
    for u in net.node_ids() {
        let truth = exact.irs_size(u) as f64;
        err += (approx.irs_size_estimate(u) - truth).abs() / truth.max(1.0);
    }
    err /= net.num_nodes() as f64;
    assert!(err < 0.15, "avg relative error {err}");

    // Greedy top-10 under both oracles overlap substantially.
    let top_exact: Vec<NodeId> = greedy_top_k(&exact.oracle(), 10)
        .into_iter()
        .map(|s| s.node)
        .collect();
    let top_approx: Vec<NodeId> = greedy_top_k(&approx.oracle(), 10)
        .into_iter()
        .map(|s| s.node)
        .collect();
    let common = top_exact.iter().filter(|s| top_approx.contains(s)).count();
    assert!(common >= 5, "only {common}/10 common seeds");

    // The exact greedy seeds must beat random seeds under TCIC.
    let cfg = TcicConfig::new(window, 0.5)
        .with_runs(60)
        .with_seed(5)
        .with_threads(2);
    let greedy_spread = tcic_spread(net, &top_exact, &cfg);
    let random: Vec<NodeId> = (0..10u32)
        .map(|i| NodeId(i * 7 % net.num_nodes() as u32))
        .collect();
    let random_spread = tcic_spread(net, &random, &cfg);
    assert!(
        greedy_spread > random_spread,
        "greedy {greedy_spread} vs random {random_spread}"
    );
}

#[test]
fn every_method_runs_on_a_profile_dataset() {
    use infprop::baselines::{ConTinEst, ConTinEstConfig, PageRankConfig, Skim, SkimConfig};
    let dataset = infprop::datasets::profiles::slashdot_like(3).build(0.01);
    let net = &dataset.network;
    let window = net.window_from_percent(10.0);
    let g = net.to_static();

    let pr = infprop::baselines::pagerank_top_k(&g, 5, &PageRankConfig::default());
    let hd = high_degree(&g, 5);
    let shd = smart_high_degree(&g, 5);
    let skim = Skim::new(
        &g,
        SkimConfig {
            seed: 2,
            ..Default::default()
        },
    )
    .top_k(5);
    let weighted = WeightedStaticGraph::from_network(net);
    let cte = ConTinEst::new(
        &weighted,
        &ConTinEstConfig::new(window.get() as f64).with_seed(2),
    )
    .top_k(5);
    let irs = ApproxIrs::compute(net, window);
    let irs_seeds: Vec<NodeId> = greedy_top_k(&irs.oracle(), 5)
        .into_iter()
        .map(|s| s.node)
        .collect();

    for (name, seeds) in [
        ("pr", &pr),
        ("hd", &hd),
        ("shd", &shd),
        ("skim", &skim),
        ("cte", &cte),
        ("irs", &irs_seeds),
    ] {
        assert!(!seeds.is_empty(), "{name} selected nothing");
        let spread = tcic_spread(net, seeds, &TcicConfig::new(window, 1.0).with_runs(1));
        assert!(spread >= seeds.len() as f64 * 0.5, "{name} spread {spread}");
    }
}

#[test]
fn exact_equals_brute_force_on_figure_graphs() {
    for net in [
        infprop::datasets::toy::figure1a(),
        infprop::datasets::toy::figure2(),
    ] {
        for w in 1..=9 {
            let exact = ExactIrs::compute(&net, Window(w));
            for u in net.node_ids() {
                let mut brute: Vec<NodeId> =
                    brute_force_irs(&net, u, Window(w)).into_iter().collect();
                brute.sort_unstable();
                assert_eq!(exact.irs_sorted(u), brute);
            }
        }
    }
}

#[test]
fn greedy_variants_agree_via_facade() {
    let net = infprop::datasets::toy::figure2();
    let exact = ExactIrs::compute(&net, Window(4));
    let oracle = exact.oracle();
    assert_eq!(greedy_top_k(&oracle, 4), greedy_top_k_paper(&oracle, 4));
}

#[test]
fn oracle_query_scales_with_precomputed_sketches() {
    // Figure 4's premise: oracle queries are cheap after preprocessing.
    let dataset = infprop::datasets::profiles::facebook_like(9).build(0.002);
    let net = &dataset.network;
    let oracle = ApproxIrs::compute(net, net.window_from_percent(20.0)).oracle();
    let seeds: Vec<NodeId> = net.node_ids().take(500).collect();
    let start = std::time::Instant::now();
    let inf = oracle.influence(&seeds);
    let took = start.elapsed();
    assert!(inf >= 0.0);
    assert!(took.as_millis() < 1_000, "query took {took:?}");
}
