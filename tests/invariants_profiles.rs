//! The paper-invariant verification layer must accept the summaries both
//! backends produce on *every* datasets profile: self-exclusion and
//! end-time bounds for exact summaries, dominance chains for sketches.

use infprop::irs::{
    invariants, ApproxIrs, ExactIrs, ExactStore, ReversePassEngine, SummaryStore, VhllStore,
};

#[test]
fn every_profile_passes_validation_under_both_backends() {
    for profile in infprop::datasets::profiles::all(17) {
        let dataset = profile.build(0.001);
        let net = &dataset.network;
        let window = net.window_from_percent(5.0);

        let exact = ExactIrs::compute(net, window);
        assert_eq!(
            exact.validate(),
            Ok(()),
            "exact summaries for {}",
            dataset.name
        );

        let approx = ApproxIrs::compute_with_precision(net, window, 6);
        assert_eq!(approx.validate(), Ok(()), "sketches for {}", dataset.name);
    }
}

#[test]
fn store_level_validation_honours_the_stream_frontier() {
    let dataset = infprop::datasets::profiles::enron_like(11).build(0.001);
    let net = &dataset.network;
    let window = net.window_from_percent(5.0);
    // After a full pass the frontier is the earliest interaction time; no
    // recorded end time may precede it.
    let frontier = net.interactions().first().map(|i| i.time);

    let store = ReversePassEngine::run(net, window, ExactStore::with_nodes(net.num_nodes()));
    assert_eq!(invariants::validate(&store, frontier), Ok(()));
    assert_eq!(store.validate(frontier), Ok(()));

    let vstore = ReversePassEngine::run(net, window, VhllStore::with_nodes(6, net.num_nodes()));
    assert_eq!(invariants::validate(&vstore, frontier), Ok(()));
}
